//! A persistent pool of **pinned shard workers** for the parallel sweep.
//!
//! Two generations of dispatch preceded this design. The first spawned a
//! `crossbeam::thread::scope` per tick (OS threads dwarfed the decisions).
//! The second kept the threads alive but re-queued every shard through a
//! shared channel each round: 2×K channel messages plus one `Mutex` per
//! shard per round, and whichever worker happened to pull a shard got it —
//! so a shard's scratch, decision arena and RNG cache lines migrated
//! between cores round after round. BENCH_2 recorded the result honestly:
//! the parallel path lost to sequential at every scale.
//!
//! [`ShardPool`] fixes both costs:
//!
//! * **Shard-to-worker affinity** — each worker owns a fixed, deterministic,
//!   contiguous block of shard indices for the life of the pool (the same
//!   ±1-balanced split [`pp_topology::partition::Partition`] uses for
//!   nodes). A shard is only ever touched by its owner, so per-shard state
//!   stays hot in one worker's cache and the `&mut` hand-off needs no
//!   locks at all (cf. Saule et al., arXiv:1104.2566, on keeping the
//!   work→processor mapping stable across rounds).
//! * **An epoch barrier instead of per-job round-trips** — one round costs
//!   one `notify_all` on the epoch condvar and one `notify_one` back from
//!   the last worker to finish, independent of K. No channels, no per-shard
//!   messages, no allocation.
//!
//! Determinism: affinity only decides *where* a shard is evaluated. Shards
//! are fixed node ranges, every node draws from its own RNG stream, and the
//! commit phase runs on the caller in fixed shard order — so results are
//! byte-identical to the sequential sweep for every worker count.
//!
//! Panics inside a shard job are caught per shard; the barrier still
//! completes (a lost ack would hang the caller forever), then
//! [`ShardPool::run_shards`] panics listing the failing shard indices. The
//! pool itself survives and keeps serving later rounds.

#![allow(unsafe_code)] // two lifetime/aliasing erasures, justified inline

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The erased per-shard job as workers see it. The pointee lives on the
/// caller's stack; see the invariant on [`ShardPool::run_shards`].
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointer targets a `Sync` closure that `run_shards` keeps
// borrowed (and this thread blocked) until every worker has passed the
// done-barrier, so shared use from worker threads is sound.
unsafe impl Send for JobPtr {}

/// Shared pool control block: the epoch counter workers wait on, the
/// current round's job, and the completion countdown.
struct Ctrl {
    /// Bumped once per round; workers sleep while it equals the last epoch
    /// they served.
    epoch: u64,
    /// The job for the current epoch (`None` between rounds — a stale
    /// pointer must never outlive its `run_shards` call).
    job: Option<JobPtr>,
    /// Workers that have not yet finished the current epoch.
    remaining: usize,
    /// Shard indices whose job panicked this epoch.
    failed: Vec<usize>,
    /// Set once on drop; workers exit their loop.
    shutdown: bool,
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    /// Workers wait here for the next epoch.
    work_cv: Condvar,
    /// The caller waits here for `remaining == 0`.
    done_cv: Condvar,
}

/// A fixed-size pool of sweep workers with pinned shard affinity. Dropping
/// it shuts the workers down and joins them.
pub struct ShardPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    shards: usize,
    /// `owner[s]` is the worker index that owns shard `s`.
    owner: Vec<usize>,
}

/// The contiguous, ±1-balanced affinity block worker `w` of `workers` owns
/// over `shards` shards — the same deterministic split `Partition` applies
/// to node ids, so the map is a pure function of `(workers, shards)`.
fn affinity_block(w: usize, workers: usize, shards: usize) -> std::ops::Range<usize> {
    let base = shards / workers;
    let rem = shards % workers;
    let start = w * base + w.min(rem);
    let len = base + usize::from(w < rem);
    start..start + len
}

impl ShardPool {
    /// Spawns a pool of `workers` threads (at least 1, at most `shards` —
    /// a worker with no shards would only add wake latency) serving a fixed
    /// universe of `shards` shard indices.
    pub fn new(workers: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let workers = workers.clamp(1, shards);
        let shared = Arc::new(Shared {
            ctrl: Mutex::new(Ctrl {
                epoch: 0,
                job: None,
                remaining: 0,
                failed: Vec::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut owner = vec![0usize; shards];
        let handles = (0..workers)
            .map(|w| {
                let block = affinity_block(w, workers, shards);
                for s in block.clone() {
                    owner[s] = w;
                }
                let shared = Arc::clone(&shared);
                let owned: Vec<usize> = block.collect();
                std::thread::spawn(move || worker_loop(&shared, &owned))
            })
            .collect();
        ShardPool { shared, handles, workers, shards, owner }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of shards the affinity map covers.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The worker index that owns shard `s` — fixed for the pool's life,
    /// identical across pools built with the same `(workers, shards)`.
    pub fn owner_of(&self, s: usize) -> usize {
        self.owner[s]
    }

    /// Runs `f(s, &mut slots[s])` for every shard index `s`, each on the
    /// worker that owns `s`, and returns when all have completed. `slots`
    /// must have exactly [`ShardPool::shards`] entries.
    ///
    /// `f` may borrow from the caller's stack: the call blocks until every
    /// worker has passed the done-barrier, so the borrow outlives every use.
    ///
    /// # Panics
    /// Panics if `slots` has the wrong length, or if any shard's job
    /// panicked on its worker — but only after the barrier, so no worker
    /// can still hold the closure (or a slot) when the unwind leaves this
    /// frame.
    pub fn run_shards<T: Send>(&self, slots: &mut [T], f: &(dyn Fn(usize, &mut T) + Sync)) {
        assert_eq!(slots.len(), self.shards, "slot slice must match the pool's shard count");
        let base = slots.as_mut_ptr();
        // Wrap the raw base pointer so the closure below is `Sync`; the
        // affinity map guarantees disjoint access (each shard index is
        // owned by exactly one worker and handed out exactly once per
        // round).
        struct SlotBase<T>(*mut T);
        // SAFETY: workers dereference disjoint offsets (one owner per
        // shard) and the caller's `&mut [T]` borrow pins the allocation
        // for the whole call.
        unsafe impl<T: Send> Sync for SlotBase<T> {}
        let slots = SlotBase(base);
        // `move` + a reference binding so the closure captures `&SlotBase`
        // (which is `Sync`) rather than disjointly capturing the raw
        // pointer field (which is not).
        let slots = &slots;
        let job = move |s: usize| {
            // SAFETY: `s` is in-bounds (owners cover exactly `0..shards`,
            // which equals `slots.len()`), and no two workers share an `s`.
            let slot: &mut T = unsafe { &mut *slots.0.add(s) };
            f(s, slot);
        };
        let job: &(dyn Fn(usize) + Sync) = &job;
        // SAFETY: erase the closure borrow's lifetime so it can sit in the
        // shared control block. The only readers are the workers serving
        // this epoch, and we block on the done-barrier (even when a job
        // panicked) and clear the slot before returning — the closure
        // cannot be dropped while any worker can still reach it.
        let job: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };

        let mut ctrl = self.shared.ctrl.lock().expect("pool control poisoned");
        debug_assert!(ctrl.job.is_none() && ctrl.remaining == 0, "overlapping run_shards");
        ctrl.job = Some(JobPtr(job));
        ctrl.remaining = self.workers;
        ctrl.epoch += 1;
        self.shared.work_cv.notify_all();
        while ctrl.remaining > 0 {
            ctrl = self.shared.done_cv.wait(ctrl).expect("pool control poisoned");
        }
        ctrl.job = None;
        let mut failed = std::mem::take(&mut ctrl.failed);
        drop(ctrl);
        if !failed.is_empty() {
            failed.sort_unstable();
            panic!("shard job(s) panicked on shards {failed:?}");
        }
    }
}

fn worker_loop(shared: &Shared, owned: &[usize]) {
    let mut served = 0u64;
    loop {
        let job = {
            let mut ctrl = shared.ctrl.lock().expect("pool control poisoned");
            while ctrl.epoch == served && !ctrl.shutdown {
                ctrl = shared.work_cv.wait(ctrl).expect("pool control poisoned");
            }
            if ctrl.shutdown {
                return;
            }
            served = ctrl.epoch;
            let JobPtr(p) = *ctrl.job.as_ref().expect("epoch bumped without a job");
            p
        };
        // SAFETY: `run_shards` keeps the pointee alive until this worker
        // decrements `remaining` below; see the invariant there.
        let f = unsafe { &*job };
        let mut failed: Vec<usize> = Vec::new();
        for &s in owned {
            // Catch per shard so one poisoned shard neither kills the
            // worker nor loses the ack — and the caller learns exactly
            // which shards failed.
            if catch_unwind(AssertUnwindSafe(|| f(s))).is_err() {
                failed.push(s);
            }
        }
        let mut ctrl = shared.ctrl.lock().expect("pool control poisoned");
        ctrl.failed.extend(failed);
        ctrl.remaining -= 1;
        if ctrl.remaining == 0 {
            shared.done_cv.notify_one();
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        if let Ok(mut ctrl) = self.shared.ctrl.lock() {
            ctrl.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_shard_exactly_once_per_round() {
        let pool = ShardPool::new(4, 13);
        let mut hits = vec![0u64; 13];
        for _ in 0..50 {
            pool.run_shards(&mut hits, &|_s, h| *h += 1);
        }
        assert!(hits.iter().all(|&h| h == 50), "{hits:?}");
    }

    #[test]
    fn affinity_is_a_deterministic_contiguous_partition() {
        for (workers, shards) in [(1, 1), (2, 2), (3, 8), (4, 13), (8, 8), (5, 64)] {
            let pool = ShardPool::new(workers, shards);
            // Every shard has exactly one owner and owners are
            // non-decreasing over the shard range (contiguous blocks).
            let owners: Vec<usize> = (0..shards).map(|s| pool.owner_of(s)).collect();
            assert!(owners.windows(2).all(|w| w[0] <= w[1]), "{owners:?}");
            assert_eq!(*owners.last().unwrap() + 1, pool.workers());
            // Blocks are ±1 balanced.
            let mut counts = vec![0usize; pool.workers()];
            for &o in &owners {
                counts[o] += 1;
            }
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(max - min <= 1, "{counts:?}");
            // And the map is a pure function of (workers, shards).
            let again = ShardPool::new(workers, shards);
            assert_eq!(owners, (0..shards).map(|s| again.owner_of(s)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shards_stay_pinned_to_their_owner() {
        // Record which OS thread serves each shard on every round: the
        // affinity contract says it never changes.
        let pool = ShardPool::new(3, 11);
        let mut seen: Vec<Option<std::thread::ThreadId>> = vec![None; 11];
        for _ in 0..40 {
            pool.run_shards(&mut seen, &|_s, slot| {
                let me = std::thread::current().id();
                match slot {
                    None => *slot = Some(me),
                    Some(owner) => assert_eq!(*owner, me, "shard migrated between workers"),
                }
            });
        }
        assert!(seen.iter().all(|s| s.is_some()));
    }

    #[test]
    fn borrows_caller_stack_safely() {
        let pool = ShardPool::new(3, 3);
        let data = [1u64, 2, 3];
        let sum = AtomicUsize::new(0);
        let mut slots = [0u8; 3];
        pool.run_shards(&mut slots, &|s, _| {
            sum.fetch_add(data[s] as usize, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn single_worker_pool_serves_all_shards() {
        let pool = ShardPool::new(1, 5);
        let mut hits = vec![0u32; 5];
        pool.run_shards(&mut hits, &|_, h| *h += 1);
        assert_eq!(hits, vec![1; 5]);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn worker_count_clamps_to_shard_count_and_one() {
        assert_eq!(ShardPool::new(0, 3).workers(), 1);
        assert_eq!(ShardPool::new(8, 3).workers(), 3);
        assert_eq!(ShardPool::new(2, 0).shards(), 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ShardPool::new(2, 4);
        let mut slots = [0u8; 4];
        pool.run_shards(&mut slots, &|_, _| {});
        drop(pool); // must not hang
    }

    #[test]
    fn panicking_shard_panics_run_with_its_index() {
        let pool = ShardPool::new(3, 7);
        let mut slots = [0u32; 7];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run_shards(&mut slots, &|s, _| {
                if s == 4 {
                    panic!("boom");
                }
            });
        }));
        let msg = *caught.expect_err("must propagate").downcast::<String>().expect("message");
        assert!(msg.contains("[4]"), "panic names the failing shard: {msg}");
        // The pool survives: every shard (including 4's owner) still runs.
        let mut slots = [0u32; 7];
        pool.run_shards(&mut slots, &|_, h| *h += 1);
        assert_eq!(slots, [1; 7]);
    }

    #[test]
    fn multiple_panics_reported_sorted() {
        let pool = ShardPool::new(2, 6);
        let mut slots = [(); 6];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run_shards(&mut slots, &|s, _| {
                if s % 2 == 1 {
                    panic!("odd shard");
                }
            });
        }));
        let msg = *caught.expect_err("must propagate").downcast::<String>().expect("message");
        assert!(msg.contains("[1, 3, 5]"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "slot slice must match")]
    fn wrong_slot_count_rejected() {
        let pool = ShardPool::new(2, 4);
        let mut slots = [0u8; 3];
        pool.run_shards(&mut slots, &|_, _| {});
    }

    #[test]
    fn slots_are_mutated_in_place() {
        let pool = ShardPool::new(4, 9);
        let mut slots: Vec<Vec<u64>> = (0..9).map(|_| Vec::new()).collect();
        for round in 0..20u64 {
            pool.run_shards(&mut slots, &|s, v| v.push(round * 100 + s as u64));
        }
        for (s, v) in slots.iter().enumerate() {
            let want: Vec<u64> = (0..20).map(|r| r * 100 + s as u64).collect();
            assert_eq!(v, &want, "shard {s}");
        }
    }
}
