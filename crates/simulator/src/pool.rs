//! A persistent worker pool for parallel shard sweeps.
//!
//! The engine once spawned a fresh `crossbeam::thread::scope` (OS threads
//! and all) every balance tick; at tick rates in the thousands per second
//! the spawn/join cost dwarfed the decisions themselves. This pool is
//! created once per [`crate::engine::Engine`] and reused: each tick the
//! engine submits one job per *shard* via [`WorkerPool::run_jobs`], the
//! workers (each owning a long-lived [`ViewScratch`]) pull whole jobs off a
//! shared queue, and the call returns once every job has been acknowledged.
//! Jobs may outnumber workers — a fast worker simply drains more of the
//! queue, which is how shard-level load balancing across threads happens.
//!
//! Determinism: jobs are fixed shard index ranges and every node uses its
//! own RNG, so results are byte-identical to the sequential sweep no matter
//! which worker executes which job.

#![allow(unsafe_code)] // one lifetime erasure, justified below

use crate::balancer::ViewScratch;
use crossbeam::channel::{self, Receiver, Sender};
use std::thread::JoinHandle;

/// The job closure as the workers see it: `(partition index, &mut scratch)`.
type JobFn<'a> = &'a (dyn Fn(usize, &mut ViewScratch) + Sync);

/// A job envelope carrying an erased-lifetime pointer to the caller's
/// closure. Safe to send because [`WorkerPool::run`] blocks until every
/// worker has acknowledged, so the pointee outlives all uses.
struct Job {
    f: *const (dyn Fn(usize, &mut ViewScratch) + Sync),
    part: usize,
}

// SAFETY: the pointer targets a closure that `run` keeps alive (borrowed for
// the whole call) and that is `Sync`, so shared use from worker threads is
// sound.
unsafe impl Send for Job {}

/// A fixed-size pool of decision workers. Dropping it shuts the workers
/// down and joins them.
pub struct WorkerPool {
    job_tx: Option<Sender<Job>>,
    done_rx: Receiver<bool>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least 1), each with its own reusable
    /// [`ViewScratch`].
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (job_tx, job_rx) = channel::unbounded::<Job>();
        let (done_tx, done_rx) = channel::unbounded::<bool>();
        let handles = (0..workers)
            .map(|_| {
                let job_rx = job_rx.clone();
                let done_tx = done_tx.clone();
                std::thread::spawn(move || {
                    let mut scratch = ViewScratch::new();
                    while let Ok(job) = job_rx.recv() {
                        // SAFETY: `run` is still blocked waiting for this
                        // job's ack, so the closure behind the pointer is
                        // alive; see the invariant on `Job`.
                        let f = unsafe { &*job.f };
                        // Catch job panics so the ack is ALWAYS sent — a
                        // lost ack would leave `run` blocked forever (a
                        // hang instead of a diagnostic).
                        let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            f(job.part, &mut scratch)
                        }))
                        .is_ok();
                        if done_tx.send(ok).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        WorkerPool { job_tx: Some(job_tx), done_rx, handles, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes `f(part, scratch)` for every partition `0..workers()` —
    /// [`WorkerPool::run_jobs`] with one job per worker.
    pub fn run(&self, f: JobFn<'_>) {
        self.run_jobs(self.workers, f);
    }

    /// Executes `f(job, scratch)` for every job index `0..jobs`,
    /// distributed over the pool's workers (jobs may outnumber workers:
    /// each worker keeps pulling until the queue drains), and returns when
    /// all have completed.
    ///
    /// `f` may borrow from the caller's stack: the call blocks until every
    /// job is acknowledged, so the borrow outlives every use.
    ///
    /// # Panics
    /// Panics if any job panicked on a worker — but only after every job
    /// has been acknowledged, so no worker can still hold the job closure
    /// when the unwind leaves this frame.
    pub fn run_jobs(&self, jobs: usize, f: JobFn<'_>) {
        if jobs == 0 {
            return;
        }
        // SAFETY: erase the closure borrow's lifetime so it can ride through
        // the channel. The only readers are the workers servicing exactly
        // the jobs submitted below, and we block on their acks (even when a
        // job panicked) before returning — the closure cannot be dropped
        // while any worker can still reach it.
        let f: *const (dyn Fn(usize, &mut ViewScratch) + Sync) = unsafe { std::mem::transmute(f) };
        let tx = self.job_tx.as_ref().expect("pool is live until dropped");
        for part in 0..jobs {
            tx.send(Job { f, part }).expect("worker pool disconnected");
        }
        let mut panicked = 0usize;
        for _ in 0..jobs {
            if !self.done_rx.recv().expect("a decision worker died") {
                panicked += 1;
            }
        }
        assert!(panicked == 0, "{panicked} decision job(s) panicked on the worker pool");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channel ends every worker's recv loop.
        self.job_tx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_partition_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..50 {
            pool.run(&|part, _scratch| {
                hits[part].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 50);
        }
    }

    #[test]
    fn borrows_caller_stack_safely() {
        let pool = WorkerPool::new(3);
        let data = [1u64, 2, 3];
        let sum = AtomicUsize::new(0);
        pool.run(&|part, _| {
            sum.fetch_add(data[part] as usize, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn single_worker_pool() {
        let pool = WorkerPool::new(1);
        let count = AtomicUsize::new(0);
        pool.run(&|part, _| {
            assert_eq!(part, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(2);
        pool.run(&|_, _| {});
        drop(pool); // must not hang
    }

    #[test]
    fn zero_requested_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn more_jobs_than_workers_all_run_once() {
        let pool = WorkerPool::new(2);
        let hits: Vec<AtomicUsize> = (0..13).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..20 {
            pool.run_jobs(13, &|job, _| {
                hits[job].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 20);
        }
    }

    #[test]
    fn zero_jobs_is_a_noop() {
        let pool = WorkerPool::new(2);
        pool.run_jobs(0, &|_, _| panic!("no job should run"));
    }

    #[test]
    fn panicking_job_panics_run_instead_of_hanging() {
        let pool = WorkerPool::new(3);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|part, _| {
                if part == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "run must propagate the job panic");
        // The pool survives: the healthy workers still process later jobs.
        let count = AtomicUsize::new(0);
        pool.run(&|_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }
}
