//! A persistent pool of **pinned shard workers** for the parallel sweep.
//!
//! Three generations of dispatch preceded this design. The first spawned a
//! `crossbeam::thread::scope` per tick (OS threads dwarfed the decisions).
//! The second kept the threads alive but re-queued every shard through a
//! shared channel each round: 2×K channel messages plus one `Mutex` per
//! shard per round, and whichever worker happened to pull a shard got it —
//! so a shard's scratch, decision arena and RNG cache lines migrated
//! between cores round after round. BENCH_2 recorded the result honestly:
//! the parallel path lost to sequential at every scale. The third (PR 7)
//! pinned shards to workers behind a `Mutex<Ctrl>` + two-condvar epoch
//! barrier — correct, but every round still took the control mutex on the
//! caller *and* on every worker, and every wake was a condvar syscall.
//!
//! [`ShardPool`] keeps the affinity design and replaces the barrier with a
//! **lock-free sense-reversing epoch barrier** on atomics (futex-style, per
//! Eibl & Rüde, arXiv:1808.00829):
//!
//! * **Shard-to-worker affinity** — each worker owns a fixed, deterministic,
//!   contiguous block of shard indices for the life of the pool (the same
//!   ±1-balanced split [`pp_topology::partition::Partition`] uses for
//!   nodes). A shard is only ever touched by its owner, so per-shard state
//!   stays hot in one worker's cache and the `&mut` hand-off needs no
//!   locks at all (cf. Saule et al., arXiv:1104.2566, on keeping the
//!   work→processor mapping stable across rounds).
//! * **A sense-reversing epoch on atomics instead of a mutexed control
//!   block** — the round-start "sense" is the epoch counter itself: a
//!   worker's private `served` epoch is its reversed sense, so publishing a
//!   round is one release `fetch_add` on [`Shared::epoch`] and finishing it
//!   is one `AcqRel` `fetch_sub` on [`Shared::remaining`], with the last
//!   worker unparking the caller. Waiters **spin briefly, then park** via
//!   `std::thread::park` — which is a futex wait on Linux (std itself falls
//!   back to a condvar only on platforms without futexes). In steady state
//!   (rounds issued back-to-back) every waiter is caught inside its spin
//!   window and `unpark` degrades to one uncontended atomic swap: the
//!   round-in/round-out path takes no mutex and makes no syscall.
//!
//! Determinism: affinity only decides *where* a shard is evaluated. Shards
//! are fixed node ranges, every node draws from its own RNG stream, and the
//! commit phase runs on the caller in fixed shard order — so results are
//! byte-identical to the sequential sweep for every worker count.
//!
//! Panics inside a shard job are caught per shard; the barrier still
//! completes (a lost decrement would hang the caller forever), then
//! [`ShardPool::run_shards`] panics listing the failing shard indices. The
//! failure list is the one piece of shared state behind a `Mutex` — it is
//! touched only on the panic path, never per round. The pool itself
//! survives and keeps serving later rounds.

#![allow(unsafe_code)] // lifetime/aliasing erasures + the barrier cells, justified inline

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{JoinHandle, Thread};

/// The erased per-shard job as workers see it. The pointee lives on the
/// caller's stack; see the invariant on [`ShardPool::run_shards`].
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointer targets a `Sync` closure that `run_shards` keeps
// borrowed (and this thread blocked) until every worker has passed the
// done-barrier, so shared use from worker threads is sound.
unsafe impl Send for JobPtr {}

/// Spin iterations before a waiter gives up and parks. Sized so that
/// back-to-back rounds (the engine's steady state, where the gap between
/// `run_shards` calls is the commit phase) are usually caught spinning,
/// while an idle pool reaches the futex wait within a microsecond instead
/// of burning a core.
const SPIN_LIMIT: u32 = 256;

/// Lock-free barrier control block. The two [`UnsafeCell`]s are published
/// through the epoch counter: the caller writes them strictly *before* its
/// release `fetch_add` on `epoch`, and a worker reads them strictly *after*
/// its acquire load observes the new epoch — release/acquire on `epoch`
/// orders every access, so the cells never race despite carrying no lock.
struct Shared {
    /// Round counter and round-start signal in one: bumped (release) once
    /// per round; a worker whose private `served` count equals it has no
    /// work. The sense-reversing trick, with the worker's own counter as
    /// the reversed sense — no flag ever needs resetting between rounds.
    epoch: AtomicU64,
    /// Workers that have not yet finished the current epoch. `AcqRel`
    /// decrements chain every worker's writes into the last decrement,
    /// whose value the caller's acquire load consumes — so everything all
    /// workers did this round happens-before `run_shards` returns.
    remaining: AtomicUsize,
    /// Set once on drop; parked workers are unparked to observe it.
    shutdown: AtomicBool,
    /// The job for the current epoch (`None` between rounds — a stale
    /// pointer must never outlive its `run_shards` call).
    job: UnsafeCell<Option<JobPtr>>,
    /// The thread blocked in `run_shards`, for the last worker to unpark.
    /// Workers clone it *before* their decrement: once `remaining` hits 0
    /// the caller may return and republish the cell.
    caller: UnsafeCell<Option<Thread>>,
    /// Shard indices whose job panicked this epoch. Cold path only: locked
    /// by a worker when a job panics and by the caller after the barrier.
    failed: Mutex<Vec<usize>>,
}

// SAFETY: the `UnsafeCell`s are ordered by the epoch/remaining protocol
// documented on the struct; everything else is atomics or a `Mutex`.
unsafe impl Sync for Shared {}

/// A fixed-size pool of sweep workers with pinned shard affinity. Dropping
/// it shuts the workers down and joins them.
pub struct ShardPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Parked-worker wake handles, index-aligned with `handles`.
    worker_threads: Vec<Thread>,
    workers: usize,
    shards: usize,
    /// `owner[s]` is the worker index that owns shard `s`.
    owner: Vec<usize>,
}

/// The contiguous, ±1-balanced affinity block worker `w` of `workers` owns
/// over `shards` shards — the same deterministic split `Partition` applies
/// to node ids, so the map is a pure function of `(workers, shards)`.
fn affinity_block(w: usize, workers: usize, shards: usize) -> std::ops::Range<usize> {
    let base = shards / workers;
    let rem = shards % workers;
    let start = w * base + w.min(rem);
    let len = base + usize::from(w < rem);
    start..start + len
}

/// Spin-then-park wait: evaluate `done` in a hot loop for [`SPIN_LIMIT`]
/// iterations, then fall back to `std::thread::park` (futex wait on Linux)
/// between re-checks. `park` may return spuriously or consume a stale
/// token, so the predicate is always re-checked — no wakeup can be lost.
#[inline]
fn spin_then_park(mut done: impl FnMut() -> bool) {
    let mut spins = 0u32;
    while !done() {
        if spins < SPIN_LIMIT {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::park();
        }
    }
}

impl ShardPool {
    /// Spawns a pool of `workers` threads (at least 1, at most `shards` —
    /// a worker with no shards would only add wake latency) serving a fixed
    /// universe of `shards` shard indices.
    pub fn new(workers: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let workers = workers.clamp(1, shards);
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            job: UnsafeCell::new(None),
            caller: UnsafeCell::new(None),
            failed: Mutex::new(Vec::new()),
        });
        let mut owner = vec![0usize; shards];
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|w| {
                let block = affinity_block(w, workers, shards);
                for s in block.clone() {
                    owner[s] = w;
                }
                let shared = Arc::clone(&shared);
                let owned: Vec<usize> = block.collect();
                std::thread::spawn(move || worker_loop(&shared, &owned))
            })
            .collect();
        let worker_threads = handles.iter().map(|h| h.thread().clone()).collect();
        ShardPool { shared, handles, worker_threads, workers, shards, owner }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of shards the affinity map covers.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The worker index that owns shard `s` — fixed for the pool's life,
    /// identical across pools built with the same `(workers, shards)`.
    pub fn owner_of(&self, s: usize) -> usize {
        self.owner[s]
    }

    /// Runs `f(s, &mut slots[s])` for every shard index `s`, each on the
    /// worker that owns `s`, and returns when all have completed. `slots`
    /// must have exactly [`ShardPool::shards`] entries.
    ///
    /// `f` may borrow from the caller's stack: the call blocks until every
    /// worker has passed the done-barrier, so the borrow outlives every use.
    ///
    /// # Panics
    /// Panics if `slots` has the wrong length, or if any shard's job
    /// panicked on its worker — but only after the barrier, so no worker
    /// can still hold the closure (or a slot) when the unwind leaves this
    /// frame.
    pub fn run_shards<T: Send>(&self, slots: &mut [T], f: &(dyn Fn(usize, &mut T) + Sync)) {
        assert_eq!(slots.len(), self.shards, "slot slice must match the pool's shard count");
        let base = slots.as_mut_ptr();
        // Wrap the raw base pointer so the closure below is `Sync`; the
        // affinity map guarantees disjoint access (each shard index is
        // owned by exactly one worker and handed out exactly once per
        // round).
        struct SlotBase<T>(*mut T);
        // SAFETY: workers dereference disjoint offsets (one owner per
        // shard) and the caller's `&mut [T]` borrow pins the allocation
        // for the whole call.
        unsafe impl<T: Send> Sync for SlotBase<T> {}
        let slots = SlotBase(base);
        // `move` + a reference binding so the closure captures `&SlotBase`
        // (which is `Sync`) rather than disjointly capturing the raw
        // pointer field (which is not).
        let slots = &slots;
        let job = move |s: usize| {
            // SAFETY: `s` is in-bounds (owners cover exactly `0..shards`,
            // which equals `slots.len()`), and no two workers share an `s`.
            let slot: &mut T = unsafe { &mut *slots.0.add(s) };
            f(s, slot);
        };
        let job: &(dyn Fn(usize) + Sync) = &job;
        // SAFETY: erase the closure borrow's lifetime so it can sit in the
        // shared control block. The only readers are the workers serving
        // this epoch, and we block on the done-barrier (even when a job
        // panicked) and clear the slot before returning — the closure
        // cannot be dropped while any worker can still reach it.
        let job: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };

        debug_assert_eq!(
            self.shared.remaining.load(Ordering::Relaxed),
            0,
            "overlapping run_shards"
        );
        // SAFETY: between rounds no worker touches the cells (each is
        // either parked, spinning on `epoch`, or pre-decrement in a
        // *previous* epoch that the 0-observation below proved finished),
        // and the release `fetch_add` on `epoch` publishes both writes to
        // every worker that acquires the new value.
        unsafe {
            debug_assert!((*self.shared.job.get()).is_none(), "job pointer leaked across rounds");
            *self.shared.job.get() = Some(JobPtr(job));
            *self.shared.caller.get() = Some(std::thread::current());
        }
        self.shared.remaining.store(self.workers, Ordering::Relaxed);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        // Kick every worker. A worker still inside its spin window (the
        // steady state) has no parked flag set, so this is one atomic swap,
        // no syscall; only an actually-parked worker costs a futex wake.
        for t in &self.worker_threads {
            t.unpark();
        }
        // Wait for the done-barrier: the last worker's decrement unparks us.
        spin_then_park(|| self.shared.remaining.load(Ordering::Acquire) == 0);
        // SAFETY: every worker passed its decrement (AcqRel chain consumed
        // by the acquire load above), so none can reach the cell again
        // before the next epoch publish.
        unsafe {
            *self.shared.job.get() = None;
        }
        let mut failed = std::mem::take(&mut *self.shared.failed.lock().expect("failure list"));
        if !failed.is_empty() {
            failed.sort_unstable();
            panic!("shard job(s) panicked on shards {failed:?}");
        }
    }
}

fn worker_loop(shared: &Shared, owned: &[usize]) {
    // The worker's private epoch count doubles as its reversed sense: a
    // round is pending exactly when the shared counter has moved past it.
    let mut served = 0u64;
    loop {
        let mut spins = 0u32;
        let epoch = loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != served {
                break e;
            }
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            if spins < SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        };
        served = epoch;
        // SAFETY: the acquire load above synchronizes with the caller's
        // release publish, which wrote the job first; `run_shards` keeps
        // the pointee alive until this worker decrements `remaining`.
        let job = unsafe { (*shared.job.get()).as_ref().expect("epoch published without a job").0 };
        let f = unsafe { &*job };
        let mut failed: Vec<usize> = Vec::new();
        for &s in owned {
            // Catch per shard so one poisoned shard neither kills the
            // worker nor loses the decrement — and the caller learns
            // exactly which shards failed.
            if catch_unwind(AssertUnwindSafe(|| f(s))).is_err() {
                failed.push(s);
            }
        }
        if !failed.is_empty() {
            shared.failed.lock().expect("failure list").extend(failed);
        }
        // SAFETY: read strictly before the decrement — once `remaining`
        // hits 0 the caller may return and republish the cell.
        let caller = unsafe { (*shared.caller.get()).clone() };
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            if let Some(t) = caller {
                t.unpark();
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for t in &self.worker_threads {
            t.unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_shard_exactly_once_per_round() {
        let pool = ShardPool::new(4, 13);
        let mut hits = vec![0u64; 13];
        for _ in 0..50 {
            pool.run_shards(&mut hits, &|_s, h| *h += 1);
        }
        assert!(hits.iter().all(|&h| h == 50), "{hits:?}");
    }

    #[test]
    fn affinity_is_a_deterministic_contiguous_partition() {
        for (workers, shards) in [(1, 1), (2, 2), (3, 8), (4, 13), (8, 8), (5, 64)] {
            let pool = ShardPool::new(workers, shards);
            // Every shard has exactly one owner and owners are
            // non-decreasing over the shard range (contiguous blocks).
            let owners: Vec<usize> = (0..shards).map(|s| pool.owner_of(s)).collect();
            assert!(owners.windows(2).all(|w| w[0] <= w[1]), "{owners:?}");
            assert_eq!(*owners.last().unwrap() + 1, pool.workers());
            // Blocks are ±1 balanced.
            let mut counts = vec![0usize; pool.workers()];
            for &o in &owners {
                counts[o] += 1;
            }
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(max - min <= 1, "{counts:?}");
            // And the map is a pure function of (workers, shards).
            let again = ShardPool::new(workers, shards);
            assert_eq!(owners, (0..shards).map(|s| again.owner_of(s)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shards_stay_pinned_to_their_owner() {
        // Record which OS thread serves each shard on every round: the
        // affinity contract says it never changes.
        let pool = ShardPool::new(3, 11);
        let mut seen: Vec<Option<std::thread::ThreadId>> = vec![None; 11];
        for _ in 0..40 {
            pool.run_shards(&mut seen, &|_s, slot| {
                let me = std::thread::current().id();
                match slot {
                    None => *slot = Some(me),
                    Some(owner) => assert_eq!(*owner, me, "shard migrated between workers"),
                }
            });
        }
        assert!(seen.iter().all(|s| s.is_some()));
    }

    #[test]
    fn borrows_caller_stack_safely() {
        let pool = ShardPool::new(3, 3);
        let data = [1u64, 2, 3];
        let sum = AtomicUsize::new(0);
        let mut slots = [0u8; 3];
        pool.run_shards(&mut slots, &|s, _| {
            sum.fetch_add(data[s] as usize, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn single_worker_pool_serves_all_shards() {
        let pool = ShardPool::new(1, 5);
        let mut hits = vec![0u32; 5];
        pool.run_shards(&mut hits, &|_, h| *h += 1);
        assert_eq!(hits, vec![1; 5]);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn worker_count_clamps_to_shard_count_and_one() {
        assert_eq!(ShardPool::new(0, 3).workers(), 1);
        assert_eq!(ShardPool::new(8, 3).workers(), 3);
        assert_eq!(ShardPool::new(2, 0).shards(), 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ShardPool::new(2, 4);
        let mut slots = [0u8; 4];
        pool.run_shards(&mut slots, &|_, _| {});
        drop(pool); // must not hang
    }

    #[test]
    fn parked_workers_wake_after_an_idle_gap() {
        // Rounds separated by far more than the spin window force the park
        // path (workers are futex-waiting, not spinning) — the wake must
        // come from `unpark`, not from a hot re-check.
        let pool = ShardPool::new(4, 8);
        let mut hits = vec![0u32; 8];
        for _ in 0..3 {
            pool.run_shards(&mut hits, &|_, h| *h += 1);
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        assert_eq!(hits, vec![3; 8]);
    }

    #[test]
    fn caller_thread_may_change_between_rounds() {
        // The caller handle is republished per round; a pool driven from
        // different threads over its life must wake whichever thread is
        // actually blocked in `run_shards`.
        let pool = std::sync::Arc::new(ShardPool::new(2, 4));
        for _ in 0..4 {
            let pool = std::sync::Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut slots = [0u8; 4];
                pool.run_shards(&mut slots, &|_, s| *s += 1);
                assert_eq!(slots, [1; 4]);
            })
            .join()
            .expect("round driven from a fresh thread");
        }
    }

    #[test]
    fn panicking_shard_panics_run_with_its_index() {
        let pool = ShardPool::new(3, 7);
        let mut slots = [0u32; 7];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run_shards(&mut slots, &|s, _| {
                if s == 4 {
                    panic!("boom");
                }
            });
        }));
        let msg = *caught.expect_err("must propagate").downcast::<String>().expect("message");
        assert!(msg.contains("[4]"), "panic names the failing shard: {msg}");
        // The pool survives: every shard (including 4's owner) still runs.
        let mut slots = [0u32; 7];
        pool.run_shards(&mut slots, &|_, h| *h += 1);
        assert_eq!(slots, [1; 7]);
    }

    #[test]
    fn multiple_panics_reported_sorted() {
        let pool = ShardPool::new(2, 6);
        let mut slots = [(); 6];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run_shards(&mut slots, &|s, _| {
                if s % 2 == 1 {
                    panic!("odd shard");
                }
            });
        }));
        let msg = *caught.expect_err("must propagate").downcast::<String>().expect("message");
        assert!(msg.contains("[1, 3, 5]"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "slot slice must match")]
    fn wrong_slot_count_rejected() {
        let pool = ShardPool::new(2, 4);
        let mut slots = [0u8; 3];
        pool.run_shards(&mut slots, &|_, _| {});
    }

    #[test]
    fn slots_are_mutated_in_place() {
        let pool = ShardPool::new(4, 9);
        let mut slots: Vec<Vec<u64>> = (0..9).map(|_| Vec::new()).collect();
        for round in 0..20u64 {
            pool.run_shards(&mut slots, &|s, v| v.push(round * 100 + s as u64));
        }
        for (s, v) in slots.iter().enumerate() {
            let want: Vec<u64> = (0..20).map(|r| r * 100 + s as u64).collect();
            assert_eq!(v, &want, "shard {s}");
        }
    }
}
