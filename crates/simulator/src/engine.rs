//! The discrete-event multiprocessor engine.
//!
//! Time advances event-to-event; balance rounds fire every `tick` time
//! units. At each round the engine snapshots the height map, lets the
//! policy refresh per-round state ([`LoadBalancer::begin_round`]), collects
//! per-node decisions **shard by shard**, validates and launches the
//! migrations. In-flight loads occupy the network for `d + size/bw` time
//! units, may hit link faults (retried with the configured budget, bounced
//! back to the source when it is exhausted), and on landing may be
//! *forwarded onward* by policies with in-motion behaviour (the paper's
//! sliding object, §5.1).
//!
//! ## Sharded tick pipeline
//!
//! The topology is split once, at build time, into `K` contiguous shards
//! ([`pp_topology::partition::Partition`]). Each shard owns its decision
//! buffers, its per-node RNG streams, a reusable view scratch and a
//! mergeable [`ShardAccum`]; the decision sweep processes whole shards —
//! on the calling thread when one worker suffices, otherwise distributed
//! over a persistent [`ShardPool`] whose workers each *own* a fixed,
//! deterministic block of shards for the life of the engine (so per-shard
//! scratch, intent arenas and RNG state stay hot in one worker's cache)
//! and synchronize through one epoch barrier per round instead of
//! per-shard channel messages. Because decisions are pure functions of the
//! tick-start snapshot and every node draws from its own RNG stream, the
//! sweep's outcome is byte-identical for every `(K, threads)` choice —
//! including `K = 1`, the sequential reference.
//!
//! Each shard's intents accumulate in a shard-local arena (its *outbox*)
//! during the sweep; the commit phase drains the outboxes on the calling
//! thread after the barrier, in fixed ascending shard order — so boundary
//! effects are exchanged batched, never interleaved, and the launch order
//! is exactly the flat engine's ascending-node order.
//!
//! On top of the decomposition sits exact **shard-level activity
//! tracking**: every state mutation marks the owning shard dirty (and, for
//! boundary nodes, the shards listed in the partition's halo-derived
//! adjacency), and a shard whose last sweep emitted nothing stays clean
//! until someone it can observe changes. When the policy opts in via
//! [`LoadBalancer::quiescence_stable`] and `K ≥ 2`, clean shards skip their
//! sweep entirely — provably without observable effect (see
//! `docs/adr/ADR-004-sharded-ticks.md` for the argument).
//!
//! Between events each node optionally consumes work (`consume_rate`),
//! completing and removing tasks, and a dynamic [`ArrivalProcess`] may
//! inject new tasks — the non-quiescent regime of §1.

use crate::balancer::{
    build_view, GlobalView, LinkView, LoadBalancer, MigratingLoad, MigrationIntent, ViewScratch,
};
use crate::checkpoint::{Checkpoint, FlightSnap};
use crate::churn::{ChurnEvent, ChurnPlan};
use crate::events::{Event, EventQueue};
use crate::pool::ShardPool;
use crate::state::SystemState;
use crate::strategy::{SimulationStrategy, WakeHeap};
use pp_metrics::imbalance::Imbalance;
use pp_metrics::ledger::{MigrationRecord, TrafficLedger};
use pp_metrics::series::TimeSeries;
use pp_metrics::shard::{load_skew, ShardAccum};
use pp_tasking::graph::TaskGraph;
use pp_tasking::resources::ResourceMatrix;
use pp_tasking::task::{Task, TaskIdGen};
use pp_tasking::workload::{validate_trace, ArrivalProcess, TraceEvent, Workload};
use pp_topology::edgeset::EdgeBitSet;
use pp_topology::graph::{EdgeId, NodeId, Topology};
use pp_topology::links::{LinkAttrs, LinkMap};
use pp_topology::partition::{Partition, RepartitionPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Dynamic link fault process: at every balance tick each up link goes down
/// with probability `p_down`, each down link recovers with probability
/// `p_up`.
#[derive(Debug, Clone, Copy)]
pub struct FaultModel {
    /// Probability an up link fails this round.
    pub p_down: f64,
    /// Probability a down link recovers this round.
    pub p_up: f64,
}

/// Adaptive online repartitioning of the shard decomposition: every
/// `every` rounds the engine compares the max/mean skew of the per-shard
/// sweep load accumulated since the last check against `skew_threshold`,
/// and when it is exceeded asks [`RepartitionPolicy`] for a better-skewed
/// contiguous layout. Repartitioning mutates no simulation state and draws
/// no randomness, so reports stay byte-identical to a static run — only
/// the per-round sweep cost changes (see `docs/adr/ADR-008-adaptive-
/// repartitioning.md`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepartitionConfig {
    /// Rounds between skew checks (a check is O(K); 0 disables checking).
    pub every: u64,
    /// Fire when max/mean per-shard load skew exceeds this (1.0 is
    /// perfectly balanced; `f64::INFINITY` measures but never fires).
    pub skew_threshold: f64,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Interval between balance rounds.
    pub tick: f64,
    /// The constant `c` in the link weight `e_{i,j}` formula.
    pub weight_c: f64,
    /// Work consumed per node per time unit (0 = quiescent redistribution).
    pub consume_rate: f64,
    /// Transfer attempts per hop before the load bounces back.
    pub max_attempts: u32,
    /// Compatibility alias for the retired per-node work-stealing sweep:
    /// when `shards` is 0 (auto), `true` selects one shard per available
    /// core — like the old path, only for 64+ nodes, so small systems keep
    /// the inline sweep's cost model. Prefer setting `shards`/`threads`
    /// directly.
    pub parallel_decide: bool,
    /// Number of spatial shards `K` the decision sweep is partitioned into
    /// (0 = auto: 1, or one per available core when `parallel_decide` is
    /// set). Clamped to the node count. `K = 1` is the sequential
    /// reference pipeline; `K ≥ 2` enables shard-level activity tracking
    /// for [`LoadBalancer::quiescence_stable`] policies.
    pub shards: usize,
    /// Worker threads for the shard sweep (0 = auto: one per available
    /// core, capped at `K`). With 1 thread shards run inline on the
    /// calling thread — no pool, no locks.
    pub threads: usize,
    /// Dynamic link up/down process (None = all links always up).
    pub fault_model: Option<FaultModel>,
    /// Dynamic task arrivals.
    pub arrival: ArrivalProcess,
    /// How time advances between rounds: `Tick` executes every round,
    /// `Event` fast-forwards provably effect-free rounds via the wake
    /// scheduler (byte-identical reports either way — see
    /// [`crate::strategy`]).
    pub strategy: SimulationStrategy,
    /// Adaptive online repartitioning (None = the build-time uniform
    /// layout stays fixed for the life of the engine).
    pub repartition: Option<RepartitionConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            tick: 1.0,
            weight_c: 1.0,
            consume_rate: 0.0,
            max_attempts: 3,
            parallel_decide: false,
            shards: 0,
            threads: 0,
            fault_model: None,
            arrival: ArrivalProcess::Quiescent,
            strategy: SimulationStrategy::Tick,
            repartition: None,
        }
    }
}

/// The resolved shard execution layout of a built engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLayout {
    /// Number of shards `K`.
    pub shards: usize,
    /// Worker threads serving the sweep.
    pub threads: usize,
    /// Nodes with at least one neighbour in another shard.
    pub boundary_nodes: usize,
}

impl fmt::Display for ShardLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shards={} threads={} boundary={}",
            self.shards, self.threads, self.boundary_nodes
        )
    }
}

/// Per-shard execution state: everything a sweep worker touches for one
/// shard, owned by that shard so no two workers share mutable data.
struct ShardSlot {
    /// Shard-local intent arena (the shard's *outbox*): every owned node's
    /// migration intents for the current sweep, appended in ascending node
    /// order. One allocation per shard, kept across ticks — in steady
    /// state the sweep reuses its capacity and never touches the global
    /// allocator. Drained by the commit phase after the round barrier.
    intents: Vec<MigrationIntent>,
    /// Per-owned-node prefix ends into `intents`: node `k`'s intents are
    /// `intents[spans[k-1]..spans[k]]` (with `spans[-1] = 0`), so the
    /// commit phase can attribute each intent to its emitting node.
    spans: Vec<u32>,
    /// Per-owned-node RNG streams (seeded exactly as the flat engine did,
    /// so sharding never changes a node's stream).
    rngs: Vec<StdRng>,
    /// Reusable neighbour-view scratch for this shard's sweeps.
    scratch: ViewScratch,
    /// Mergeable sweep counters (merged in shard order on demand).
    accum: ShardAccum,
    /// Whether state this shard can observe (its nodes, their tasks, its
    /// incident links, its halo neighbours' heights) changed since its
    /// last sweep that emitted nothing.
    dirty: bool,
    /// Whether the current tick's sweep evaluated this shard.
    evaluated: bool,
}

#[derive(Debug, Clone, Copy)]
struct Flight {
    load: MigratingLoad,
    from: NodeId,
    to: NodeId,
    link_weight: f64,
    heat: f64,
    attempts: u32,
    bounced: bool,
}

/// Summary of a finished run. `PartialEq` compares every recorded artifact
/// (series, ledger, totals), so equality means the runs were outcome-
/// identical — used by the determinism tests comparing sequential and
/// parallel decision sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Policy name.
    pub balancer: String,
    /// Balance rounds executed.
    pub rounds: u64,
    /// Final simulation time.
    pub time: f64,
    /// Imbalance of the final height map.
    pub final_imbalance: Imbalance,
    /// CoV time series (sampled after every round).
    pub series: TimeSeries,
    /// Migration/traffic ledger.
    pub ledger: TrafficLedger,
    /// Total resident load at the end.
    pub total_load: f64,
    /// Load still in flight at the end.
    pub in_flight_load: f64,
    /// Tasks completed by work consumption.
    pub completed_tasks: usize,
}

impl RunReport {
    /// First round index at which the CoV dropped to ≤ `eps` and stayed
    /// there for `window` samples.
    pub fn converged_round(&self, eps: f64, window: usize) -> Option<f64> {
        self.series.converged_at(eps, window)
    }
}

/// The simulation engine. Build with [`EngineBuilder`].
pub struct Engine {
    state: SystemState,
    balancer: Box<dyn LoadBalancer>,
    config: EngineConfig,
    queue: EventQueue,
    time: f64,
    next_tick: f64,
    round: u64,
    flights: Vec<Option<Flight>>,
    free_slots: Vec<usize>,
    engine_rng: StdRng,
    ledger: TrafficLedger,
    series: TimeSeries,
    idgen: TaskIdGen,
    /// Edge-indexed set of links currently down.
    down_links: EdgeBitSet,
    /// Precomputed `e_{i,j}` per edge id for `config.weight_c`.
    link_weights: Vec<f64>,
    /// The spatial decomposition driving the sweep (fixed at build time).
    partition: Partition,
    /// Per-shard execution state, indexed by shard id.
    shards: Vec<ShardSlot>,
    /// Pending per-shard wakes (the event strategy's scheduler; idle under
    /// the tick strategy).
    wakes: WakeHeap,
    /// CoV memoized across consecutive skipped rounds: `cov()` is a pure
    /// function of state, and a skipped round mutates nothing, so the
    /// cached value is bit-identical to recomputing — without paying the
    /// drift-guarded O(n) exact pass per skip on a drained-flat surface.
    /// Cleared by anything that touches state (executed rounds, drain,
    /// restore).
    skip_cov: Option<f64>,
    /// Resolved sweep worker count (1 = inline, no pool).
    threads: usize,
    /// Lazily created persistent shard pool (only when `threads > 1`).
    /// Affinity is a pure function of `(threads, K)` and both are fixed at
    /// build time, so the pool survives checkpoints and restores unchanged
    /// — the worker map is execution layout, not simulation state.
    pool: Option<ShardPool>,
    /// Rounds whose sweep evaluated at least one shard (diagnostic; kept
    /// out of `RunReport` like the shard counters, since skip-capable
    /// layouts execute fewer rounds than the sequential reference).
    executed_rounds: u64,
    /// Per-shard `nodes_evaluated` totals at the last repartition check —
    /// the subtraction baseline that turns the monotone accumulators into
    /// a sliding load window. Only maintained when `config.repartition`
    /// is set.
    repartition_base: Vec<u64>,
    /// Adaptive repartitions applied so far (diagnostic, like the shard
    /// counters: layout evolution is execution detail, never report data).
    repartitions: u64,
    /// Reused staging buffer for carrying per-node RNG streams across a
    /// repartition (capacity `n` after the first fire, so steady-state
    /// fires allocate nothing).
    rng_scratch: Vec<StdRng>,
    /// The join/leave schedule, sorted by `(round, node)` (empty = no
    /// churn). Static configuration like the trace — never checkpointed
    /// beyond its length fingerprint.
    churn: Vec<ChurnEvent>,
    /// Next unapplied entry of `churn`. Derivable from `round` (membership
    /// is a pure function of the plan prefix), so restores re-derive it.
    churn_next: usize,
    /// Per-node down flags (sized only when `churn` is non-empty, so
    /// churn-free engines pay nothing on the hot paths).
    down_nodes: Vec<bool>,
    /// Union of `down_links` and every edge incident to a down node — the
    /// set the decision views and `live_edge` consult when churn is active.
    /// Mirrors `down_links` exactly while every node is up.
    masked_links: EdgeBitSet,
    /// Per-node speed multipliers on `consume_rate` (empty = homogeneous).
    speeds: Vec<f64>,
    /// Recorded arrival trace being replayed (indexed by `TraceArrival`).
    trace: Vec<TraceEvent>,
    in_flight_load: f64,
    completed_tasks: usize,
}

impl Engine {
    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Immutable system state.
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// Current height map.
    pub fn heights(&self) -> Vec<f64> {
        self.state.heights()
    }

    /// Load currently in flight.
    pub fn in_flight_load(&self) -> f64 {
        self.in_flight_load
    }

    /// Total load in the system (resident + in flight).
    pub fn system_load(&self) -> f64 {
        self.state.total_load() + self.in_flight_load
    }

    /// Links currently down.
    pub fn down_link_count(&self) -> usize {
        self.down_links.count()
    }

    /// Nodes currently out of the system (left via churn, not yet rejoined).
    pub fn down_node_count(&self) -> usize {
        self.down_nodes.iter().filter(|&&d| d).count()
    }

    /// Whether node `v` is currently part of the system.
    #[inline]
    fn node_up(&self, v: NodeId) -> bool {
        self.down_nodes.is_empty() || !self.down_nodes[v.idx()]
    }

    /// The edge set decisions and launches must treat as unusable: the
    /// fault process's down links, plus — when churn is active — every
    /// edge incident to a down node.
    #[inline]
    fn blocked_links(&self) -> &EdgeBitSet {
        if self.churn.is_empty() {
            &self.down_links
        } else {
            &self.masked_links
        }
    }

    /// The resolved shard execution layout. Boundary nodes are counted
    /// from the topology on demand: after an adaptive repartition the
    /// partition's precomputed edge views are stale (see
    /// [`Partition::refit`]), and this diagnostic is the only reader.
    pub fn shard_layout(&self) -> ShardLayout {
        let topo = &self.state.topo;
        let boundary_nodes = topo
            .nodes()
            .filter(|&v| {
                let s = self.partition.shard_of(v);
                topo.neighbors(v).iter().any(|&u| self.partition.shard_of(u) != s)
            })
            .count();
        ShardLayout { shards: self.partition.shard_count(), threads: self.threads, boundary_nodes }
    }

    /// The spatial decomposition the sweep runs over.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Sweep counters merged over all shards, in fixed shard order.
    pub fn shard_stats(&self) -> ShardAccum {
        let mut total = ShardAccum::new();
        for slot in &self.shards {
            total.merge(&slot.accum);
        }
        total
    }

    /// Rounds whose decision sweep evaluated at least one shard (as
    /// opposed to rounds fully skipped by quiescence tracking or the event
    /// strategy's fast-forward). Like the shard counters this is a
    /// layout-dependent diagnostic — benchmarks divide elapsed time by
    /// *executed* work so skip-heavy runs report real per-decision cost.
    pub fn executed_rounds(&self) -> u64 {
        self.executed_rounds
    }

    /// Marks the shards that can observe node `v` (its own plus, for
    /// boundary nodes, every shard owning one of its neighbours) as needing
    /// evaluation. Called on every mutation of `v`'s tasks or height.
    /// Adjacency comes from the topology CSR plus the ownership map, not
    /// the partition's halo views — a handful of extra loads per call, but
    /// it keeps the whole sweep independent of the edge-indexed views so an
    /// adaptive repartition only has to refit the interval layout.
    #[inline]
    fn mark_node_dirty(&mut self, v: NodeId) {
        let s = self.partition.shard_of(v);
        self.shards[s].dirty = true;
        for &u in self.state.topo.neighbors(v) {
            let a = self.partition.shard_of(u);
            if a != s {
                self.shards[a].dirty = true;
            }
        }
    }

    /// Pre-reserves metric storage for `n` further rounds, so recording a
    /// sample during a tick never reallocates (useful for allocation-free
    /// steady-state measurement).
    pub fn reserve_rounds(&mut self, n: u64) {
        self.series.reserve(n as usize);
    }

    /// Runs `n` balance rounds (processing all intervening events) and
    /// returns the engine for chaining. The configured
    /// [`SimulationStrategy`] decides *how* each round runs — what it
    /// records is byte-identical either way.
    pub fn run_rounds(&mut self, n: u64) -> &mut Self {
        match self.config.strategy {
            SimulationStrategy::Tick => {
                for _ in 0..n {
                    self.run_round_tick();
                    self.maybe_repartition();
                }
            }
            SimulationStrategy::Event => {
                for _ in 0..n {
                    self.run_round_event();
                    self.maybe_repartition();
                }
            }
        }
        self
    }

    /// Adaptive repartitions applied so far.
    pub fn repartitions(&self) -> u64 {
        self.repartitions
    }

    /// The between-rounds repartition check (a no-op without the
    /// [`RepartitionConfig`] knob): every `every` rounds, measure the
    /// per-shard sweep load accumulated since the last check and, when its
    /// max/mean skew exceeds the threshold, ask the policy for a strictly
    /// better-skewed contiguous layout. Runs at the same vantage point as
    /// [`Engine::checkpoint`] — all outboxes drained, no sweep in flight.
    fn maybe_repartition(&mut self) {
        let Some(rp) = self.config.repartition else { return };
        if rp.every == 0 || !self.round.is_multiple_of(rp.every) || self.shards.len() < 2 {
            return;
        }
        let loads: Vec<f64> = self
            .shards
            .iter()
            .zip(&self.repartition_base)
            .map(|(slot, &base)| (slot.accum.nodes_evaluated - base) as f64)
            .collect();
        // Slide the window whether or not we fire, so each check judges
        // recent activity instead of the whole run's history.
        for (base, slot) in self.repartition_base.iter_mut().zip(&self.shards) {
            *base = slot.accum.nodes_evaluated;
        }
        if load_skew(&loads) <= rp.skew_threshold {
            return;
        }
        if let Some(ranges) = RepartitionPolicy::rebalance(&self.partition, &loads) {
            self.apply_ranges(ranges);
        }
    }

    /// Swaps the shard decomposition for a new contiguous layout with the
    /// same K — the checkpoint machinery's layout-change path applied in
    /// place. Per-node RNG streams are carried over by node id (shard
    /// order is node-id order on both sides), and pending wakes are
    /// re-derived from the dirty flags next round. The pool keeps its
    /// workers: affinity is a pure function of `(threads, K)` and K is
    /// unchanged. Nothing here mutates simulation state or draws
    /// randomness, so the run's report bytes cannot change.
    ///
    /// Activity flags are carried across the layout change at range
    /// granularity: a new shard needs evaluation iff it covers at least
    /// one node of an old *dirty* shard. Node-level quiescence is
    /// layout-independent and all outboxes are drained at this vantage
    /// point, so a new shard covering only clean old shards' nodes is
    /// provably quiescent — skipping it is exact. (Dropping to all-dirty,
    /// the checkpoint path's approach, would also be exact, but a full
    /// sweep of every shard after every repartition erases precisely the
    /// sweep savings repartitioning exists to buy.)
    fn apply_ranges(&mut self, ranges: Vec<(u32, u32)>) {
        debug_assert_eq!(ranges.len(), self.shards.len());
        let old_dirty: Vec<(u32, u32)> = (0..self.shards.len())
            .filter(|&s| self.shards[s].dirty)
            .map(|s| self.partition.range(s))
            .collect();
        // Per-node RNG streams ride along by node id through a persistent
        // scratch buffer; `append`/`extend` keep every Vec's capacity, so a
        // steady-state fire allocates nothing.
        self.rng_scratch.clear();
        for slot in &mut self.shards {
            self.rng_scratch.append(&mut slot.rngs);
        }
        self.partition.refit(ranges);
        let mut rngs = self.rng_scratch.drain(..);
        for (s, slot) in self.shards.iter_mut().enumerate() {
            let (start, end) = self.partition.range(s);
            slot.rngs.extend(rngs.by_ref().take((end - start) as usize));
            slot.intents.clear();
            slot.spans.clear();
            slot.evaluated = false;
            slot.dirty = old_dirty.iter().any(|&(lo, hi)| lo < end && start < hi);
        }
        drop(rngs);
        for (base, slot) in self.repartition_base.iter_mut().zip(&self.shards) {
            *base = slot.accum.nodes_evaluated;
        }
        self.wakes.clear();
        self.repartitions += 1;
    }

    /// One round of the round-by-round reference pipeline.
    fn run_round_tick(&mut self) {
        // Draining may have carried the clock past the scheduled tick.
        let t = self.next_tick.max(self.time);
        self.process_events_until(t);
        self.advance_time_to(t);
        self.fire_tick();
        self.next_tick = self.time + self.config.tick;
    }

    /// One round of the event strategy: execute the full pipeline only
    /// when the wake scheduler says something can happen at this round's
    /// tick; otherwise fast-forward the round in closed form.
    ///
    /// The skip is byte-exact against [`Engine::run_round_tick`]: with no
    /// event due at or before `t`, no resident work to consume, no fault
    /// process and a clean quiescence-stable policy, the tick path would
    /// mutate nothing and draw no randomness — its only observable effects
    /// are the round counter, the clock, and one CoV sample, all of which
    /// the skip reproduces with the identical float operations (`cov()` is
    /// a pure read of the incremental statistics, and the clock advances by
    /// the same `max`/`+ tick` arithmetic). See
    /// `docs/adr/ADR-006-event-strategy.md`.
    fn run_round_event(&mut self) {
        let t = self.next_tick.max(self.time);
        if self.round_has_effect(t) {
            self.skip_cov = None;
            self.process_events_until(t);
            self.advance_time_to(t);
            self.fire_tick();
        } else {
            self.round += 1;
            self.time = self.time.max(t);
            let cov = match self.skip_cov {
                Some(c) => c,
                None => {
                    let c = self.state.cov();
                    self.skip_cov = Some(c);
                    c
                }
            };
            self.series.push(self.time, cov);
        }
        self.next_tick = self.time + self.config.tick;
    }

    /// Whether the round at tick time `t` can observably differ from the
    /// closed-form fast-forward. `&mut` because consulting the wake heap
    /// drops lazily invalidated entries.
    fn round_has_effect(&mut self, t: f64) -> bool {
        // The fault process draws engine RNG per edge every round, and a
        // policy without the quiescence-stable contract may mutate state or
        // draw randomness in `begin_round`/`decide` even when clean.
        if self.config.fault_model.is_some() || !self.balancer.quiescence_stable() {
            return true;
        }
        // A churn event due at this round's tick mutates membership (and
        // possibly drains a queue); the fast-forward must not straddle it.
        if self.churn_next < self.churn.len() && self.churn[self.churn_next].round <= self.round + 1
        {
            return true;
        }
        // Resident work decays between rounds; the O(1) counter gates the
        // O(n) consumption sweep. (On an empty system the sweep is a no-op:
        // `consume_work` on a task-less node mutates nothing.)
        if self.config.consume_rate > 0.0 && self.state.resident_tasks() > 0 {
            return true;
        }
        self.next_wake_at(t).is_some_and(|w| w <= t)
    }

    /// The earliest pending wake: the next dirty-shard sweep or the next
    /// event-queue entry (in-flight landing, dynamic arrival, trace
    /// replay), whichever comes first. `None` means nothing is ever going
    /// to happen again. On a fully quiescent system (no shard dirty) this
    /// is exactly the event queue's next time.
    pub fn next_wake(&mut self) -> Option<f64> {
        let t = self.next_tick.max(self.time);
        self.next_wake_at(t)
    }

    fn next_wake_at(&mut self, t: f64) -> Option<f64> {
        // Re-derive the per-shard wakes from the activity tracking: a dirty
        // shard must be swept at the upcoming tick, a clean one sleeps
        // until something it can observe changes. Arming is idempotent per
        // (shard, time), so quiescent stretches never grow the heap.
        for s in 0..self.shards.len() {
            if self.shards[s].dirty {
                self.wakes.arm(s, t);
            } else {
                self.wakes.disarm(s);
            }
        }
        let sweep = self.wakes.peek().map(|(w, _)| w);
        match (sweep, self.queue.peek_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Runs rounds until the height CoV stays at or below `eps` for
    /// `window` consecutive rounds, or `max_rounds` have been executed.
    /// Returns the number of rounds run by this call.
    pub fn run_until_balanced(&mut self, eps: f64, window: usize, max_rounds: u64) -> u64 {
        let window = window.max(1);
        let mut streak = 0usize;
        for i in 0..max_rounds {
            self.run_rounds(1);
            let cov = self.state.cov();
            if cov <= eps {
                streak += 1;
                if streak >= window {
                    return i + 1;
                }
            } else {
                streak = 0;
            }
        }
        max_rounds
    }

    /// Processes pending events (in-flight loads, arrivals) for up to
    /// `extra_time` without firing further balance rounds — used to drain
    /// the network at the end of a run.
    pub fn drain(&mut self, extra_time: f64) -> &mut Self {
        self.skip_cov = None;
        let deadline = self.time + extra_time;
        self.process_events_until(deadline);
        // Consume work up to the next scheduled tick, but never rewind.
        let target = deadline.min(self.next_tick).max(self.time);
        self.advance_time_to(target);
        self
    }

    /// Builds the final report (cheap clone of the recorded metrics).
    pub fn report(&self) -> RunReport {
        RunReport {
            balancer: self.balancer.name().to_string(),
            rounds: self.round,
            time: self.time,
            final_imbalance: Imbalance::of(self.state.height_slice()),
            series: self.series.clone(),
            ledger: self.ledger.clone(),
            total_load: self.state.total_load(),
            in_flight_load: self.in_flight_load,
            completed_tasks: self.completed_tasks,
        }
    }

    /// Captures the complete dynamic state of the engine as a versioned
    /// [`Checkpoint`] — see the [`checkpoint`](crate::checkpoint) module
    /// docs for exactly what is (and is not) included.
    ///
    /// Must be taken *between* balance rounds (which is the only vantage
    /// point the public API exposes: after `run_rounds`/`drain` return).
    /// Restoring the snapshot into an engine freshly built from the same
    /// configuration resumes the run byte-identically, under any `(shards,
    /// threads)` layout.
    pub fn checkpoint(&self) -> Checkpoint {
        let n = self.state.node_count();
        let mut node_rngs = Vec::with_capacity(n);
        for (s, slot) in self.shards.iter().enumerate() {
            debug_assert_eq!(self.partition.range(s).0 as usize, node_rngs.len());
            node_rngs.extend(slot.rngs.iter().map(|r| r.state()));
        }
        let (queue_seq, queue) = self.queue.snapshot();
        Checkpoint {
            nodes: n,
            edges: self.state.topo.edge_count(),
            trace_len: self.trace.len(),
            balancer: self.balancer.name().to_string(),
            time: self.time,
            next_tick: self.next_tick,
            round: self.round,
            engine_rng: self.engine_rng.state(),
            node_rngs,
            node_tasks: (0..n)
                .map(|i| self.state.node(NodeId(i as u32)).tasks().to_vec())
                .collect(),
            node_heights: self.state.height_slice().to_vec(),
            stats: self.state.stat_snapshot(),
            idgen_next: self.idgen.position(),
            down_words: self.down_links.words().to_vec(),
            flights: self
                .flights
                .iter()
                .map(|f| {
                    f.map(|f| FlightSnap {
                        task: f.load.task,
                        flag: f.load.flag,
                        hops: f.load.hops,
                        source: f.load.source.0,
                        from: f.from.0,
                        to: f.to.0,
                        link_weight: f.link_weight,
                        heat: f.heat,
                        attempts: f.attempts,
                        bounced: f.bounced,
                    })
                })
                .collect(),
            free_slots: self.free_slots.clone(),
            in_flight_load: self.in_flight_load,
            completed_tasks: self.completed_tasks,
            queue_seq,
            queue,
            ledger: self.ledger.records().to_vec(),
            series: self.series.points().to_vec(),
            shard_layout_k: self.shards.len(),
            shard_dirty: self.shards.iter().map(|s| s.dirty).collect(),
            shard_accums: self.shards.iter().map(|s| s.accum).collect(),
            balancer_state: self.balancer.save_state(),
            churn_len: self.churn.len(),
        }
    }

    /// Overwrites this engine's dynamic state with a [`Checkpoint`],
    /// resuming the captured run exactly. The engine must have been built
    /// from the same configuration the checkpoint was written under; the
    /// fingerprint (node/edge counts, trace length, balancer name) is
    /// checked and a mismatch — like any structurally invalid snapshot —
    /// returns `Err` without touching the engine. Never panics on corrupt
    /// input: every index and float the snapshot carries is validated
    /// before anything is applied.
    pub fn restore(&mut self, cp: &Checkpoint) -> Result<(), String> {
        let n = self.state.node_count();
        // --- Validation phase: no engine state is touched until all of it
        // passes, so a bad checkpoint leaves the engine fully usable.
        if cp.nodes != n {
            return Err(format!("checkpoint has {} nodes, engine has {n}", cp.nodes));
        }
        if cp.edges != self.state.topo.edge_count() {
            return Err(format!(
                "checkpoint has {} edges, engine has {}",
                cp.edges,
                self.state.topo.edge_count()
            ));
        }
        if cp.trace_len != self.trace.len() {
            return Err(format!(
                "checkpoint replays a {}-record trace, engine has {} records",
                cp.trace_len,
                self.trace.len()
            ));
        }
        if cp.balancer != self.balancer.name() {
            return Err(format!(
                "checkpoint was written under balancer `{}`, engine runs `{}`",
                cp.balancer,
                self.balancer.name()
            ));
        }
        if cp.churn_len != self.churn.len() {
            return Err(format!(
                "checkpoint was written under a {}-event churn plan, engine has {} events",
                cp.churn_len,
                self.churn.len()
            ));
        }
        if cp.node_rngs.len() != n || cp.node_tasks.len() != n || cp.node_heights.len() != n {
            return Err("checkpoint per-node vectors do not match the node count".into());
        }
        // Seeding never produces the all-zero xoshiro state (it is the
        // generator's fixed point); a zeroed entry can only be a corrupted
        // snapshot, so reject it here rather than let `from_state`'s
        // defense-in-depth repair substitute a different stream silently.
        if cp.engine_rng == [0; 4] || cp.node_rngs.contains(&[0; 4]) {
            return Err("checkpoint carries an all-zero RNG state (corrupt snapshot)".into());
        }
        for (key, v) in
            [("time", cp.time), ("next_tick", cp.next_tick), ("in_flight_load", cp.in_flight_load)]
        {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("checkpoint `{key}` = {v} must be finite and non-negative"));
            }
        }
        if cp.node_heights.iter().any(|h| !h.is_finite()) {
            return Err("checkpoint node heights must be finite".into());
        }
        let down_links =
            EdgeBitSet::from_words(self.state.topo.edge_count(), cp.down_words.clone())
                .map_err(|e| format!("checkpoint down-link bitset: {e}"))?;
        let queue = EventQueue::from_entries(cp.queue_seq, &cp.queue)
            .map_err(|e| format!("checkpoint event queue: {e}"))?;
        // Event payload indices: every pending load arrival must name a
        // distinct occupied flight slot (handle_arrival takes the slot), and
        // trace replays must stay inside the trace table. Temporal
        // consistency: no pending event may predate the clock (a legit
        // engine always drains events up to `time` before they can linger),
        // or the post-restore event loop would run the clock backwards.
        let mut arrival_seen = vec![false; cp.flights.len()];
        for &(et, _, event) in &cp.queue {
            if et < cp.time {
                return Err(format!("pending event at t={et} predates the clock t={}", cp.time));
            }
            match event {
                Event::LoadArrival { flight } => {
                    if flight >= cp.flights.len() || cp.flights[flight].is_none() {
                        return Err(format!("pending arrival names invalid flight slot {flight}"));
                    }
                    if std::mem::replace(&mut arrival_seen[flight], true) {
                        return Err(format!("flight slot {flight} has two pending arrivals"));
                    }
                }
                Event::TraceArrival { record } => {
                    if record >= self.trace.len() {
                        return Err(format!("pending trace arrival names invalid record {record}"));
                    }
                }
                Event::TaskArrival => {}
                Event::BalanceTick => {
                    return Err("checkpoint queue carries a balance tick".into());
                }
            }
        }
        // The inverse direction: every occupied slot must have exactly one
        // pending arrival, or the load would sit in the slab (and in
        // `in_flight_load`) forever without ever landing.
        if let Some(orphan) =
            (0..cp.flights.len()).find(|&i| cp.flights[i].is_some() && !arrival_seen[i])
        {
            return Err(format!("flight slot {orphan} is occupied but has no pending arrival"));
        }
        let mut free_seen = vec![false; cp.flights.len()];
        for &s in &cp.free_slots {
            if s >= cp.flights.len() || cp.flights[s].is_some() {
                return Err(format!("free list names non-empty flight slot {s}"));
            }
            if std::mem::replace(&mut free_seen[s], true) {
                return Err(format!("flight slot {s} listed free twice"));
            }
        }
        // And every empty slot must be on the free list, or the slab leaks
        // it and later allocations pop different slot indices than the
        // uninterrupted run — silent divergence instead of a clean error.
        if let Some(leak) =
            (0..cp.flights.len()).find(|&i| cp.flights[i].is_none() && !free_seen[i])
        {
            return Err(format!("empty flight slot {leak} is missing from the free list"));
        }
        // The per-shard activity vectors must be self-consistent with the
        // capture layout regardless of this engine's layout.
        if cp.shard_dirty.len() != cp.shard_layout_k || cp.shard_accums.len() != cp.shard_layout_k {
            return Err(format!(
                "checkpoint shard vectors do not match shard_layout_k = {}",
                cp.shard_layout_k
            ));
        }
        for f in cp.flights.iter().flatten() {
            if f.from as usize >= n || f.to as usize >= n || f.source as usize >= n {
                return Err("flight references a node out of range".into());
            }
            if !(f.flag.is_finite() && f.link_weight.is_finite() && f.heat.is_finite()) {
                return Err("flight floats must be finite".into());
            }
            if !(f.task.size.is_finite() && f.task.size > 0.0 && f.task.work.is_finite())
                || f.task.work < 0.0
            {
                return Err("flight task size/work out of range".into());
            }
        }
        // Floats that feed accumulated totals or later arithmetic: a single
        // non-finite value would restore Ok and silently poison every
        // subsequent report, so reject it here (JSON carrying `1e999`
        // parses to infinity).
        if ![
            cp.stats.height_sum,
            cp.stats.height_sq_sum,
            cp.stats.stat_peak_sum,
            cp.stats.stat_peak_sq,
        ]
        .iter()
        .all(|v| v.is_finite())
        {
            return Err("checkpoint imbalance statistics must be finite".into());
        }
        for tasks in &cp.node_tasks {
            for t in tasks {
                if !(t.size.is_finite() && t.size > 0.0 && t.work.is_finite())
                    || t.work < 0.0
                    || !t.created_at.is_finite()
                {
                    return Err("checkpoint task size/work/created_at out of range".into());
                }
            }
        }
        for rec in &cp.ledger {
            if ![rec.time, rec.size, rec.link_weight, rec.heat].iter().all(|v| v.is_finite()) {
                return Err("checkpoint ledger records must be finite".into());
            }
        }
        if cp.series.windows(2).any(|w| w[1].0 < w[0].0)
            || cp.series.iter().any(|&(t, v)| !t.is_finite() || !v.is_finite())
        {
            return Err("checkpoint series must be finite with non-decreasing times".into());
        }
        // A legit capture's last sample was pushed at (or before) the
        // clock; a later one would make the next tick's push violate the
        // series' time-order assertion — reject it here instead of
        // panicking there.
        if let Some(&(last, _)) = cp.series.last() {
            if last > cp.time {
                return Err(format!(
                    "checkpoint series runs to t={last}, beyond the clock t={}",
                    cp.time
                ));
            }
        }
        // --- Balancer state next: it only touches the policy, and a
        // failure here still leaves the engine's own state untouched.
        if let Some(state) = &cp.balancer_state {
            self.balancer
                .load_state(state, n)
                .map_err(|e| format!("balancer `{}` state: {e}", self.balancer.name()))?;
        }
        // --- Apply phase (infallible from here on).
        for i in 0..n {
            let v = NodeId(i as u32);
            self.state.restore_node(v, cp.node_tasks[i].clone(), cp.node_heights[i]);
        }
        self.state.restore_stats(cp.stats);
        self.engine_rng = StdRng::from_state(cp.engine_rng);
        // Vector lengths were validated against shard_layout_k above, so
        // the K comparison decides whether the flags carry over — unless
        // adaptive repartitioning is on, where equal K no longer implies
        // equal ranges (the writer may have been mid-adaptation), so the
        // flags are meaningless and the conservative all-dirty path is the
        // only sound one.
        let same_layout =
            cp.shard_layout_k == self.shards.len() && self.config.repartition.is_none();
        for (s, slot) in self.shards.iter_mut().enumerate() {
            let (start, end) = self.partition.range(s);
            for (k, i) in (start..end).enumerate() {
                slot.rngs[k] = StdRng::from_state(cp.node_rngs[i as usize]);
            }
            slot.intents.clear();
            slot.spans.clear();
            slot.evaluated = false;
            // Same layout: resume the activity tracking exactly. Different
            // layout: conservatively mark everything dirty — report-exact
            // either way (evaluating a clean shard of a quiescence-stable
            // policy emits nothing and draws nothing; ADR-004), only the
            // diagnostic skip counters differ.
            if same_layout {
                slot.dirty = cp.shard_dirty[s];
                slot.accum = cp.shard_accums[s];
            } else {
                slot.dirty = true;
                slot.accum = ShardAccum::new();
            }
        }
        // Pending wakes belong to the abandoned timeline; the next round
        // re-derives them from the restored dirty flags. The memoized skip
        // CoV belongs to it too, and so does the repartition load window.
        self.wakes.clear();
        self.skip_cov = None;
        for (base, slot) in self.repartition_base.iter_mut().zip(&self.shards) {
            *base = slot.accum.nodes_evaluated;
        }
        self.queue = queue;
        self.flights = cp
            .flights
            .iter()
            .map(|f| {
                f.as_ref().map(|f| Flight {
                    load: MigratingLoad {
                        task: f.task,
                        flag: f.flag,
                        hops: f.hops,
                        source: NodeId(f.source),
                    },
                    from: NodeId(f.from),
                    to: NodeId(f.to),
                    link_weight: f.link_weight,
                    heat: f.heat,
                    attempts: f.attempts,
                    bounced: f.bounced,
                })
            })
            .collect();
        self.free_slots = cp.free_slots.clone();
        self.in_flight_load = cp.in_flight_load;
        self.completed_tasks = cp.completed_tasks;
        self.idgen = TaskIdGen::starting_at(cp.idgen_next);
        self.down_links = down_links;
        // Membership is a pure function of the plan prefix applied so far,
        // so it is re-derived rather than stored: replay every event with
        // round ≤ the restored round (flags only — the drains those events
        // performed are already baked into the restored node queues), then
        // rebuild the mask as down links ∪ edges incident to down nodes.
        if !self.churn.is_empty() {
            self.down_nodes.iter_mut().for_each(|d| *d = false);
            let mut next = 0;
            while next < self.churn.len() && self.churn[next].round <= cp.round {
                let ev = self.churn[next];
                self.down_nodes[ev.node as usize] = ev.leave;
                next += 1;
            }
            self.churn_next = next;
            self.masked_links = self.down_links.clone();
            for i in 0..n {
                let v = NodeId(i as u32);
                if !self.down_nodes[i] {
                    continue;
                }
                for &u in self.state.topo.neighbors(v) {
                    let e = self.state.topo.edge_index(v, u).expect("CSR neighbour edge");
                    self.masked_links.insert(e);
                }
            }
        }
        // Rebuild the ledger and series by replaying the identical record
        // sequence, so the running totals reproduce the captured
        // accumulation bit-for-bit.
        self.ledger = TrafficLedger::new();
        for rec in &cp.ledger {
            self.ledger.record(*rec);
        }
        self.series = TimeSeries::new();
        for &(t, v) in &cp.series {
            self.series.push(t, v);
        }
        self.time = cp.time;
        self.next_tick = cp.next_tick;
        self.round = cp.round;
        Ok(())
    }

    fn process_events_until(&mut self, t: f64) {
        while let Some(et) = self.queue.peek_time() {
            if et > t {
                break;
            }
            let (et, event) = self.queue.pop().expect("peeked");
            self.advance_time_to(et);
            match event {
                Event::BalanceTick => unreachable!("ticks are driven by run_rounds"),
                Event::LoadArrival { flight } => self.handle_arrival(flight),
                Event::TaskArrival => self.handle_task_arrival(),
                Event::TraceArrival { record } => self.handle_trace_arrival(record),
            }
        }
    }

    /// Advances the clock to `t`, consuming work on every node (scaled by
    /// the node's speed multiplier when heterogeneous speeds are set).
    fn advance_time_to(&mut self, t: f64) {
        let dt = t - self.time;
        debug_assert!(dt >= -1e-9, "time went backwards: {} -> {}", self.time, t);
        if dt > 0.0 && self.config.consume_rate > 0.0 {
            let amount = dt * self.config.consume_rate;
            for i in 0..self.state.node_count() {
                // SoA gate: consuming on an empty node is a no-op (nothing
                // completes, nothing is used, nothing is marked dirty), so
                // the sweep streams the flat task-count array and skips the
                // node-record walk entirely for idle nodes.
                if self.state.task_count_slice()[i] == 0 {
                    continue;
                }
                // A churned-out node consumes nothing: its frozen tasks (the
                // no-live-receiver leave case) wait for it to rejoin.
                if !self.down_nodes.is_empty() && self.down_nodes[i] {
                    continue;
                }
                let scaled = if self.speeds.is_empty() { amount } else { amount * self.speeds[i] };
                if scaled > 0.0 {
                    let v = NodeId(i as u32);
                    let (done, used) = self.state.consume_work(v, scaled);
                    self.completed_tasks += done;
                    if done > 0 || used > 0.0 {
                        self.mark_node_dirty(v);
                    }
                }
            }
        }
        self.time = self.time.max(t);
    }

    fn fire_tick(&mut self) {
        self.round += 1;
        self.apply_churn();
        self.update_faults();

        let global = GlobalView {
            topo: &self.state.topo,
            heights: self.state.height_slice(),
            round: self.round,
            time: self.time,
        };
        self.balancer.begin_round(&global);

        self.collect_decisions();
        // Commit phase — the batched halo exchange: drain the evaluated
        // shards' outboxes in fixed shard order. Shards are contiguous
        // ascending id ranges, so this is exactly the flat engine's
        // ascending-node launch order, and every cross-shard (halo) effect
        // lands here, after the barrier, never mid-sweep. Skipped shards
        // hold no intents (their outboxes were drained the last time they
        // were evaluated). Arenas are swapped out so `launch` may mutate
        // state while we drain them; they (and their capacity) come back
        // after.
        for s in 0..self.shards.len() {
            if !self.shards[s].evaluated || self.shards[s].intents.is_empty() {
                continue;
            }
            let (start, _) = self.partition.range(s);
            let intents = std::mem::take(&mut self.shards[s].intents);
            let spans = std::mem::take(&mut self.shards[s].spans);
            let mut next = 0usize;
            for (k, &end) in spans.iter().enumerate() {
                let node = NodeId(start + k as u32);
                while next < end as usize {
                    self.launch(node, intents[next]);
                    next += 1;
                }
            }
            let slot = &mut self.shards[s];
            slot.intents = intents;
            slot.intents.clear();
            slot.spans = spans;
            slot.spans.clear();
        }
        self.series.push(self.time, self.state.cov());
    }

    /// Applies every churn event scheduled at or before the current round,
    /// in plan order. Runs at the very top of the tick — before the fault
    /// process and the decision sweep — and draws no randomness, so churned
    /// runs stay byte-identical across every `(shards, threads)` layout and
    /// both simulation strategies.
    fn apply_churn(&mut self) {
        while self.churn_next < self.churn.len() && self.churn[self.churn_next].round <= self.round
        {
            let ev = self.churn[self.churn_next];
            self.churn_next += 1;
            let v = NodeId(ev.node);
            if ev.leave {
                self.node_leave(v);
            } else {
                self.node_join(v);
            }
        }
    }

    /// Takes node `v` out of the system: masks its incident edges and
    /// drains its resident tasks round-robin over the up neighbours
    /// reachable across non-faulted links (ascending node order — the CSR
    /// order every other sweep uses). With no live receiver (every
    /// neighbour down or every incident link faulted) the tasks freeze in
    /// place until the node rejoins; they are not consumed meanwhile.
    fn node_leave(&mut self, v: NodeId) {
        self.down_nodes[v.idx()] = true;
        let mut receivers: Vec<NodeId> = Vec::new();
        for &u in self.state.topo.neighbors(v) {
            let e = self.state.topo.edge_index(v, u).expect("CSR neighbour edge exists");
            self.masked_links.insert(e);
            if self.node_up(u) && !self.down_links.contains(e) {
                receivers.push(u);
            }
        }
        self.mark_node_dirty(v);
        if receivers.is_empty() {
            return;
        }
        let ids: Vec<_> = self.state.node(v).tasks().iter().map(|t| t.id).collect();
        for (i, id) in ids.into_iter().enumerate() {
            let task = self.state.remove_task(v, id).expect("drained task is resident");
            self.state.add_task(receivers[i % receivers.len()], task);
        }
        for &u in &receivers {
            self.mark_node_dirty(u);
        }
    }

    /// Brings node `v` back cold: unmasks its incident edges (except those
    /// whose other endpoint is still down, and those the fault process
    /// holds down) and wakes the shards that can observe it.
    fn node_join(&mut self, v: NodeId) {
        self.down_nodes[v.idx()] = false;
        let unmask: Vec<EdgeId> = self
            .state
            .topo
            .neighbors(v)
            .iter()
            .filter(|&&u| self.node_up(u))
            .map(|&u| self.state.topo.edge_index(v, u).expect("CSR neighbour edge exists"))
            .filter(|&e| !self.down_links.contains(e))
            .collect();
        for e in unmask {
            self.masked_links.remove(e);
        }
        self.mark_node_dirty(v);
    }

    fn update_faults(&mut self) {
        let Some(fm) = self.config.fault_model else { return };
        let churning = !self.churn.is_empty();
        for e in 0..self.state.topo.edge_count() as u32 {
            let e = EdgeId(e);
            let flipped = if self.down_links.contains(e) {
                let up = self.engine_rng.gen_bool(fm.p_up);
                if up {
                    self.down_links.remove(e);
                    // The mask lifts only if neither endpoint is down.
                    if churning {
                        let (u, v) = self.state.topo.edge_endpoints(e);
                        if self.node_up(u) && self.node_up(v) {
                            self.masked_links.remove(e);
                        }
                    }
                }
                up
            } else {
                let down = self.engine_rng.gen_bool(fm.p_down);
                if down {
                    self.down_links.insert(e);
                    if churning {
                        self.masked_links.insert(e);
                    }
                }
                down
            };
            if flipped {
                // A link flip changes only its two endpoints' views.
                let (u, v) = self.state.topo.edge_endpoints(e);
                let su = self.partition.shard_of(u);
                let sv = self.partition.shard_of(v);
                self.shards[su].dirty = true;
                self.shards[sv].dirty = true;
            }
        }
    }

    /// The live edge between `u` and `v`, if the edge exists, its link is
    /// up, and neither endpoint has churned out.
    fn live_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let blocked = self.blocked_links();
        self.state.topo.edge_index(u, v).filter(|&e| !blocked.contains(e))
    }

    /// Fills each shard's decision buffers with its nodes' migration
    /// intents for this tick. Decisions are pure functions of the
    /// tick-start height snapshot (nothing mutates state until the launch
    /// phase) and every node draws from its own RNG stream, so evaluating
    /// shards inline, across the worker pool, or skipping provably
    /// quiescent ones yields identical results.
    fn collect_decisions(&mut self) {
        let round = self.round;
        let time = self.time;
        // Shard-level activity tracking only has resolution at K ≥ 2; the
        // single-shard pipeline stays the skip-free sequential reference.
        let skip_ok = self.shards.len() >= 2 && self.balancer.quiescence_stable();
        let mut pending = 0usize;
        for slot in &mut self.shards {
            slot.evaluated = slot.dirty || !skip_ok;
            if slot.evaluated {
                pending += 1;
            } else {
                slot.accum.record_skipped();
            }
        }
        if pending == 0 {
            return;
        }
        self.executed_rounds += 1;

        let blocked = if self.churn.is_empty() { &self.down_links } else { &self.masked_links };
        let state = &self.state;
        let heights = state.height_slice();
        let links = LinkView {
            attrs: state.links().attrs(),
            weights: Some(&self.link_weights),
            weight_c: self.config.weight_c,
            down: if blocked.none_set() { None } else { Some(blocked) },
        };
        let balancer = &*self.balancer;
        let partition = &self.partition;

        if self.threads > 1 && pending > 1 {
            let threads = self.threads;
            let k = self.shards.len();
            let pool = self.pool.get_or_insert_with(|| ShardPool::new(threads, k));
            // Every shard runs on the worker that owns it — same worker
            // every round, so the slot's arena, scratch and RNG cache lines
            // never migrate between cores. The pool hands each worker
            // disjoint `&mut ShardSlot`s; no locks, no per-shard messages,
            // one barrier wake per round. Skipped shards cost their owner
            // one flag read.
            pool.run_shards(&mut self.shards, &|s, slot| {
                if !slot.evaluated {
                    return;
                }
                let (start, end) = partition.range(s);
                // Pull the halo's height words onto this core before the
                // decision loop: neighbouring shards' workers dirtied them
                // last round, and streaming them in one batch beats
                // faulting them in one cache miss at a time mid-decision.
                // Pooled path only — with a single worker every line is
                // already local and the touch would be pure overhead.
                prefetch_halo(state, heights, start, end);
                eval_shard(slot, start, end, state, heights, &links, balancer, round, time);
            });
        } else {
            for s in 0..self.shards.len() {
                if !self.shards[s].evaluated {
                    continue;
                }
                let (start, end) = self.partition.range(s);
                eval_shard(
                    &mut self.shards[s],
                    start,
                    end,
                    state,
                    heights,
                    &links,
                    balancer,
                    round,
                    time,
                );
            }
        }
    }

    /// Validates and launches one migration from `from`.
    fn launch(&mut self, from: NodeId, intent: MigrationIntent) {
        // Destination must be a live neighbour.
        let Some(edge) = self.live_edge(from, intent.to) else {
            return;
        };
        // Task must still be resident (a node might double-propose).
        let Some(task) = self.state.remove_task(from, intent.task) else {
            return;
        };
        self.mark_node_dirty(from);
        let load = MigratingLoad { task, flag: intent.flag, hops: 0, source: from };
        self.launch_load(from, intent.to, edge, load, intent.heat);
    }

    fn launch_load(
        &mut self,
        from: NodeId,
        to: NodeId,
        edge: EdgeId,
        mut load: MigratingLoad,
        heat: f64,
    ) {
        let attrs = self.state.links().get(edge);
        let duration = attrs.transfer_time(load.task.size);
        // Attempts until first success are geometric in the per-try success
        // probability; sample the count directly with one uniform draw
        // instead of one Bernoulli draw per retry, then cap at the budget.
        // `G = 1 + ⌊ln(1−U)/ln(1−p)⌋`; the transfer bounces iff G exceeds
        // the budget.
        let p_ok = attrs.success_probability(duration).max(1e-12);
        let budget = self.config.max_attempts.max(1);
        let (attempts, bounced) = if p_ok >= 1.0 {
            (1, false)
        } else {
            let u: f64 = self.engine_rng.gen_range(0.0..1.0);
            let g = 1.0 + ((1.0 - u).ln() / (1.0 - p_ok).ln()).floor();
            if g > budget as f64 {
                (budget, true)
            } else {
                (g as u32, false)
            }
        };
        let (dest, bounced) = if bounced { (from, true) } else { (to, false) };
        load.hops += 1;
        let flight = Flight {
            load,
            from,
            to: dest,
            link_weight: self.link_weights[edge.idx()],
            heat,
            attempts,
            bounced,
        };
        self.in_flight_load += load.task.size;
        let slot = if let Some(s) = self.free_slots.pop() {
            self.flights[s] = Some(flight);
            s
        } else {
            self.flights.push(Some(flight));
            self.flights.len() - 1
        };
        self.queue
            .push(self.time + duration * attempts as f64, Event::LoadArrival { flight: slot });
    }

    fn handle_arrival(&mut self, slot: usize) {
        let flight = self.flights[slot].take().expect("dangling flight");
        self.free_slots.push(slot);
        self.in_flight_load -= flight.load.task.size;

        self.ledger.record(MigrationRecord {
            time: self.time,
            from: flight.from.0,
            to: flight.to.0,
            size: flight.load.task.size,
            link_weight: flight.link_weight,
            heat: flight.heat,
            faulted: flight.attempts > 1 || flight.bounced,
        });

        if flight.bounced {
            // The transfer failed for good; the load stays at its source
            // (or, if the source churned out mid-flight, the nearest live
            // node standing in for it).
            let dest = self.deposit_node(flight.to);
            self.state.add_task(dest, flight.load.task);
            self.mark_node_dirty(dest);
            return;
        }

        // A landing node that churned out mid-flight cannot decide (its
        // RNG stream must not advance for a node that is not there): the
        // load deposits at the nearest live node instead.
        if !self.node_up(flight.to) {
            let dest = self.deposit_node(flight.to);
            self.state.add_task(dest, flight.load.task);
            self.mark_node_dirty(dest);
            return;
        }

        // In-motion decision: may the load keep sliding (§5.1)? The view
        // is built into the landing shard's scratch and the draw comes from
        // the landing node's own RNG stream, exactly as the flat engine
        // did.
        let blocked = if self.churn.is_empty() { &self.down_links } else { &self.masked_links };
        let links = LinkView {
            attrs: self.state.links().attrs(),
            weights: Some(&self.link_weights),
            weight_c: self.config.weight_c,
            down: if blocked.none_set() { None } else { Some(blocked) },
        };
        let s = self.partition.shard_of(flight.to);
        let local = (flight.to.0 - self.partition.range(s).0) as usize;
        let slot = &mut self.shards[s];
        let view = build_view(
            &mut slot.scratch,
            &self.state,
            flight.to,
            self.state.height_slice(),
            &links,
            self.round,
            self.time,
        );
        let onward = self.balancer.on_arrival(&view, &flight.load, &mut slot.rngs[local]);
        match onward {
            Some(intent) => match self.live_edge(flight.to, intent.to) {
                Some(edge) => {
                    let mut load = flight.load;
                    load.flag = intent.flag;
                    self.launch_load(flight.to, intent.to, edge, load, intent.heat);
                }
                None => {
                    self.state.add_task(flight.to, flight.load.task);
                    self.mark_node_dirty(flight.to);
                }
            },
            None => {
                self.state.add_task(flight.to, flight.load.task);
                self.mark_node_dirty(flight.to);
            }
        }
    }

    fn handle_task_arrival(&mut self) {
        let n = self.state.node_count();
        if let Some((next, size)) = self.config.arrival.next_after(self.time, &mut self.engine_rng)
        {
            // Current arrival: the process picks the target (uniform for
            // all processes except the moving hotspot).
            let node = NodeId(self.config.arrival.target_node(self.time, n, &mut self.engine_rng));
            // A down target redirects to the next live node cyclically —
            // the draw itself is unchanged, so the engine stream position
            // stays a pure function of time, never of membership.
            let node = if self.node_up(node) { node } else { self.next_up_node(node) };
            let task = Task::new(self.idgen.next_id(), size, node.0).created_at(self.time);
            self.state.add_task(node, task);
            self.mark_node_dirty(node);
            self.queue.push(next, Event::TaskArrival);
        }
    }

    fn handle_trace_arrival(&mut self, record: usize) {
        let ev = self.trace[record];
        let node = NodeId(ev.node);
        let node = if self.node_up(node) { node } else { self.next_up_node(node) };
        let task = Task::new(self.idgen.next_id(), ev.size, node.0).created_at(self.time);
        self.state.add_task(node, task);
        self.mark_node_dirty(node);
    }

    /// Where a load addressed at `v` is deposited: `v` itself when up,
    /// otherwise `v`'s first up neighbour (ascending — the node the load is
    /// physically closest to), otherwise the next up node cyclically.
    fn deposit_node(&self, v: NodeId) -> NodeId {
        if self.node_up(v) {
            return v;
        }
        if let Some(&u) = self.state.topo.neighbors(v).iter().find(|&&u| self.node_up(u)) {
            return u;
        }
        self.next_up_node(v)
    }

    /// The first up node after `v` in cyclic node-id order. The churn plan
    /// never empties the system, so this always finds one.
    fn next_up_node(&self, v: NodeId) -> NodeId {
        let n = self.state.node_count() as u32;
        for step in 1..=n {
            let u = NodeId((v.0 + step) % n);
            if self.node_up(u) {
                return u;
            }
        }
        v
    }
}

/// Touches the height words of one shard's halo — neighbours of its nodes
/// owned by *other* shards — so the decision sweep reads warm lines instead
/// of pulling each cross-shard height over the interconnect mid-loop. The
/// reads feed a `black_box`ed sum so the touch cannot be optimised away;
/// the value itself is discarded, so this cannot affect what is computed.
#[inline]
fn prefetch_halo(state: &SystemState, heights: &[f64], start: u32, end: u32) {
    let mut touched = 0.0f64;
    for v in start..end {
        for &j in state.topo.neighbors(NodeId(v)) {
            let j = j.0;
            if j < start || j >= end {
                touched += heights[j as usize];
            }
        }
    }
    std::hint::black_box(touched);
}

/// Sweeps one shard: evaluates `decide` for every owned node into the
/// shard's decision buffers, using the shard's scratch and per-node RNGs.
/// Shared by the inline and pooled paths, so both are trivially identical.
#[allow(clippy::too_many_arguments)] // one hot call site, flat args beat a context struct
fn eval_shard(
    slot: &mut ShardSlot,
    start: u32,
    end: u32,
    state: &SystemState,
    heights: &[f64],
    links: &LinkView<'_>,
    balancer: &dyn LoadBalancer,
    round: u64,
    time: f64,
) {
    slot.intents.clear();
    slot.spans.clear();
    for (k, i) in (start..end).enumerate() {
        let node = NodeId(i);
        let view = build_view(&mut slot.scratch, state, node, heights, links, round, time);
        balancer.decide_into(&view, &mut slot.rngs[k], &mut slot.intents);
        slot.spans.push(slot.intents.len() as u32);
    }
    let intents = slot.intents.len() as u64;
    slot.accum.record_evaluated((end - start) as u64, intents);
    // An all-empty sweep leaves the shard clean: for a quiescence-stable
    // policy it stays skippable until a mutation it can observe re-marks
    // it. (When the policy is not quiescence-stable `dirty` is ignored —
    // every shard is evaluated every tick.)
    slot.dirty = intents > 0;
}

/// Builder for [`Engine`].
pub struct EngineBuilder {
    topo: Topology,
    links: Option<LinkMap>,
    workload: Option<Workload>,
    task_graph: TaskGraph,
    resources: ResourceMatrix,
    balancer: Option<Box<dyn LoadBalancer>>,
    config: EngineConfig,
    speeds: Vec<f64>,
    trace: Vec<TraceEvent>,
    churn: ChurnPlan,
    seed: u64,
}

impl EngineBuilder {
    /// Starts a builder for the given topology.
    pub fn new(topo: Topology) -> Self {
        EngineBuilder {
            topo,
            links: None,
            workload: None,
            task_graph: TaskGraph::new(),
            resources: ResourceMatrix::none(),
            balancer: None,
            config: EngineConfig::default(),
            speeds: Vec::new(),
            trace: Vec::new(),
            churn: ChurnPlan::default(),
            seed: 0,
        }
    }

    /// Sets link attributes (default: uniform unit links).
    pub fn links(mut self, links: LinkMap) -> Self {
        self.links = Some(links);
        self
    }

    /// Sets the initial workload (default: empty system).
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = Some(w);
        self
    }

    /// Sets the task dependency graph.
    pub fn task_graph(mut self, g: TaskGraph) -> Self {
        self.task_graph = g;
        self
    }

    /// Sets the resource matrix.
    pub fn resources(mut self, r: ResourceMatrix) -> Self {
        self.resources = r;
        self
    }

    /// Sets the balancing policy (required).
    pub fn balancer<B: LoadBalancer + 'static>(mut self, b: B) -> Self {
        self.balancer = Some(Box::new(b));
        self
    }

    /// Sets the boxed balancing policy.
    pub fn balancer_boxed(mut self, b: Box<dyn LoadBalancer>) -> Self {
        self.balancer = Some(b);
        self
    }

    /// Sets the engine configuration.
    pub fn config(mut self, c: EngineConfig) -> Self {
        self.config = c;
        self
    }

    /// Sets per-node speed multipliers on `consume_rate` — heterogeneous
    /// processors where some nodes retire work faster than others. An empty
    /// vector (the default) means homogeneous unit speed.
    pub fn node_speeds(mut self, speeds: Vec<f64>) -> Self {
        self.speeds = speeds;
        self
    }

    /// Schedules a recorded arrival trace for replay: every record becomes
    /// one arrival event at its absolute time, on its node, with its size.
    /// Composes with the dynamic [`ArrivalProcess`] (both inject tasks).
    pub fn arrival_trace(mut self, trace: Vec<TraceEvent>) -> Self {
        self.trace = trace;
        self
    }

    /// Schedules a node join/leave plan (default: no churn). The plan was
    /// drawn from its own seeded RNG at construction, so attaching it
    /// perturbs no engine stream.
    pub fn churn(mut self, plan: ChurnPlan) -> Self {
        self.churn = plan;
        self
    }

    /// Sets the master seed for all randomness.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Builds the engine.
    ///
    /// # Panics
    /// Panics if no balancer was provided, the workload size does not match
    /// the topology, the speed vector has the wrong length or non-positive
    /// entries, or the arrival trace fails validation.
    pub fn build(self) -> Engine {
        let balancer = self.balancer.expect("a balancer is required");
        if !self.speeds.is_empty() {
            assert_eq!(
                self.speeds.len(),
                self.topo.node_count(),
                "speed vector length must match the topology"
            );
            assert!(
                self.speeds.iter().all(|&s| s.is_finite() && s > 0.0),
                "node speeds must be finite and positive"
            );
        }
        validate_trace(&self.trace, self.topo.node_count()).expect("invalid arrival trace");
        self.churn.validate(self.topo.node_count()).expect("invalid churn plan");
        let links =
            self.links.unwrap_or_else(|| LinkMap::uniform(&self.topo, LinkAttrs::default()));
        let mut state = SystemState::new(self.topo, links, self.task_graph, self.resources);
        let mut idgen = TaskIdGen::new();
        if let Some(w) = self.workload {
            assert_eq!(
                w.tasks.len(),
                state.node_count(),
                "workload node count must match the topology"
            );
            idgen = w.idgen.clone();
            for (i, tasks) in w.tasks.into_iter().enumerate() {
                for t in tasks {
                    state.add_task(NodeId(i as u32), t);
                }
            }
        }
        let n = state.node_count();
        let link_weights = state.links().weights(self.config.weight_c);
        let edge_count = state.topo.edge_count();
        let mix = |i: u64| -> u64 {
            // SplitMix64-style mixing for independent per-node streams.
            let mut z = self.seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let engine_rng = StdRng::seed_from_u64(mix(0));
        // Resolve the shard layout: explicit `shards` wins; auto derives 1
        // (the sequential reference) unless the `parallel_decide` alias
        // asks for one shard per available core. The alias keeps the old
        // work-stealing path's `n >= 64` cutoff so small systems never pay
        // pool dispatch for a handful of decisions.
        let avail = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        let k = match self.config.shards {
            0 if self.config.parallel_decide && n >= 64 => avail,
            0 => 1,
            k => k,
        }
        .clamp(1, n.max(1));
        let partition = Partition::new(&state.topo, k);
        let k = partition.shard_count();
        let threads =
            if self.config.threads == 0 { avail.min(k) } else { self.config.threads.min(k) }.max(1);
        // Per-node RNG seeds depend only on the node id, never the layout,
        // so every (K, threads) choice sees identical streams.
        let shards = (0..k)
            .map(|s| {
                let (start, end) = partition.range(s);
                ShardSlot {
                    intents: Vec::new(),
                    spans: Vec::with_capacity((end - start) as usize),
                    rngs: (start..end).map(|i| StdRng::seed_from_u64(mix(i as u64 + 1))).collect(),
                    scratch: ViewScratch::new(),
                    accum: ShardAccum::new(),
                    dirty: true,
                    evaluated: false,
                }
            })
            .collect();
        let mut engine = Engine {
            state,
            balancer,
            config: self.config,
            queue: EventQueue::new(),
            time: 0.0,
            next_tick: self.config.tick,
            round: 0,
            flights: Vec::new(),
            free_slots: Vec::new(),
            engine_rng,
            ledger: TrafficLedger::new(),
            series: TimeSeries::new(),
            idgen,
            down_links: EdgeBitSet::new(edge_count),
            link_weights,
            partition,
            shards,
            wakes: WakeHeap::new(k),
            skip_cov: None,
            threads,
            pool: None,
            executed_rounds: 0,
            repartition_base: vec![0; k],
            repartitions: 0,
            rng_scratch: Vec::new(),
            down_nodes: if self.churn.is_empty() { Vec::new() } else { vec![false; n] },
            masked_links: EdgeBitSet::new(edge_count),
            churn: self.churn.into_events(),
            churn_next: 0,
            speeds: self.speeds,
            trace: self.trace,
            in_flight_load: 0.0,
            completed_tasks: 0,
        };
        engine.series.push(0.0, engine.state.cov());
        if !matches!(engine.config.arrival, ArrivalProcess::Quiescent) {
            engine.queue.push(0.0, Event::TaskArrival);
        }
        for (record, ev) in engine.trace.iter().enumerate() {
            engine.queue.push(ev.time, Event::TraceArrival { record });
        }
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::{NodeView, NullBalancer};

    /// Moves one unit-size task to the lowest neighbour whenever the height
    /// difference exceeds 1 — a minimal working policy for engine tests.
    struct GreedyOne;
    impl LoadBalancer for GreedyOne {
        fn name(&self) -> &str {
            "greedy-one"
        }
        fn decide(&self, view: &NodeView<'_>, _rng: &mut StdRng) -> Vec<MigrationIntent> {
            let Some(task) = view.tasks.first() else { return Vec::new() };
            let Some(lowest) = view.neighbors.iter().min_by(|a, b| a.height.total_cmp(&b.height))
            else {
                return Vec::new();
            };
            if view.height - lowest.height > 1.0 {
                vec![MigrationIntent { task: task.id, to: lowest.id, flag: 0.0, heat: 0.0 }]
            } else {
                Vec::new()
            }
        }
    }

    fn quiet_engine(balancer: impl LoadBalancer + 'static) -> Engine {
        let topo = Topology::ring(4);
        let workload = Workload::hotspot(4, 0, 8.0);
        EngineBuilder::new(topo).workload(workload).balancer(balancer).seed(1).build()
    }

    #[test]
    fn null_balancer_changes_nothing() {
        let mut e = quiet_engine(NullBalancer);
        let before = e.heights();
        e.run_rounds(10);
        assert_eq!(e.heights(), before);
        assert_eq!(e.report().ledger.migration_count(), 0);
        assert_eq!(e.round(), 10);
    }

    #[test]
    fn greedy_policy_spreads_hotspot() {
        let mut e = quiet_engine(GreedyOne);
        e.run_rounds(60);
        e.drain(10.0);
        let h = e.heights();
        let im = Imbalance::of(&h);
        assert!(im.spread <= 2.0, "heights {h:?}");
        // Load is conserved (quiescent system).
        assert!((e.system_load() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn load_conservation_with_in_flight() {
        let mut e = quiet_engine(GreedyOne);
        // After every round, resident + in-flight must equal the initial 8.
        for _ in 0..20 {
            e.run_rounds(1);
            assert!((e.system_load() - 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let topo = Topology::torus(&[4, 4]);
            let w = Workload::uniform_random(16, 10.0, 3);
            let mut e = EngineBuilder::new(topo).workload(w).balancer(GreedyOne).seed(seed).build();
            e.run_rounds(30);
            e.heights()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn series_records_initial_and_per_round() {
        let mut e = quiet_engine(NullBalancer);
        e.run_rounds(5);
        let r = e.report();
        assert_eq!(r.series.len(), 6); // t=0 plus 5 rounds
        assert_eq!(r.rounds, 5);
    }

    #[test]
    fn work_consumption_completes_tasks() {
        let topo = Topology::ring(4);
        let w = Workload::from_loads(&[4.0, 0.0, 0.0, 0.0], 1.0);
        let mut e = EngineBuilder::new(topo)
            .workload(w)
            .balancer(NullBalancer)
            .config(EngineConfig { consume_rate: 1.0, ..Default::default() })
            .seed(0)
            .build();
        e.run_rounds(2);
        // 2 time units × rate 1 consumed 2 units of work on node 0.
        let r = e.report();
        assert_eq!(r.completed_tasks, 2);
        assert!((e.heights()[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_arrivals_inject_load() {
        let topo = Topology::ring(4);
        let mut e = EngineBuilder::new(topo)
            .balancer(NullBalancer)
            .config(EngineConfig {
                arrival: ArrivalProcess::Poisson { rate: 5.0, size_min: 1.0, size_max: 1.0 },
                ..Default::default()
            })
            .seed(7)
            .build();
        e.run_rounds(20);
        assert!(e.state().total_load() > 0.0);
        assert!(e.state().total_tasks() > 10);
    }

    #[test]
    fn fault_model_takes_links_down_and_up() {
        let topo = Topology::torus(&[4, 4]);
        let mut e = EngineBuilder::new(topo)
            .balancer(NullBalancer)
            .config(EngineConfig {
                fault_model: Some(FaultModel { p_down: 0.5, p_up: 0.1 }),
                ..Default::default()
            })
            .seed(3)
            .build();
        e.run_rounds(5);
        assert!(e.down_link_count() > 0, "expected some links down");
        // With p_up = 1.0 everything recovers.
        let mut e2 = EngineBuilder::new(Topology::torus(&[4, 4]))
            .balancer(NullBalancer)
            .config(EngineConfig {
                fault_model: Some(FaultModel { p_down: 0.0, p_up: 1.0 }),
                ..Default::default()
            })
            .seed(3)
            .build();
        e2.run_rounds(5);
        assert_eq!(e2.down_link_count(), 0);
    }

    #[test]
    fn faulty_links_bounce_loads_back() {
        // fault_prob near 1: every transfer fails all attempts and bounces.
        let topo = Topology::ring(4);
        let links = LinkMap::uniform(
            &topo,
            LinkAttrs { bandwidth: 1.0, distance: 1.0, fault_prob: 0.999_999 },
        );
        let w = Workload::hotspot(4, 0, 8.0);
        let mut e =
            EngineBuilder::new(topo).links(links).workload(w).balancer(GreedyOne).seed(2).build();
        e.run_rounds(10);
        e.drain(20.0);
        // All load is back (or still) at node 0; every record is a fault.
        assert!((e.heights()[0] - 8.0).abs() < 1e-9, "{:?}", e.heights());
        let r = e.report();
        assert!(r.ledger.migration_count() > 0);
        assert_eq!(r.ledger.fault_count(), r.ledger.migration_count());
    }

    #[test]
    fn sharded_sweep_matches_sequential() {
        let build = |shards: usize, threads: usize| {
            let topo = Topology::torus(&[8, 8]);
            let w = Workload::uniform_random(64, 10.0, 11);
            let mut e = EngineBuilder::new(topo)
                .workload(w)
                .balancer(GreedyOne)
                .config(EngineConfig { shards, threads, ..Default::default() })
                .seed(9)
                .build();
            e.run_rounds(25);
            e.drain(10.0);
            (e.heights(), e.report())
        };
        let (h_seq, r_seq) = build(1, 1);
        for (k, t) in [(2, 1), (5, 1), (8, 2), (64, 3)] {
            let (h, r) = build(k, t);
            assert_eq!(h_seq, h, "K={k} threads={t}");
            // Not just final heights: every recorded artifact (CoV series,
            // migration ledger, totals) must be byte-identical.
            assert_eq!(r_seq, r, "K={k} threads={t}");
        }
    }

    #[test]
    fn sharded_sweep_deterministic_with_faults_and_arrivals() {
        // The full event mix — fault process, Poisson arrivals, work
        // consumption — must still be identical for every layout, because
        // all engine RNG draws happen outside the decision sweep.
        let build = |shards: usize, threads: usize| {
            let topo = Topology::torus(&[8, 8]);
            let w = Workload::uniform_random(64, 6.0, 3);
            let mut e = EngineBuilder::new(topo)
                .workload(w)
                .balancer(GreedyOne)
                .config(EngineConfig {
                    shards,
                    threads,
                    consume_rate: 0.2,
                    fault_model: Some(FaultModel { p_down: 0.05, p_up: 0.5 }),
                    arrival: ArrivalProcess::Poisson { rate: 2.0, size_min: 0.5, size_max: 1.5 },
                    ..Default::default()
                })
                .seed(17)
                .build();
            e.run_rounds(40);
            e.drain(20.0);
            e.report()
        };
        let seq = build(1, 1);
        for (k, t) in [(3, 1), (7, 2), (16, 4)] {
            assert_eq!(seq, build(k, t), "K={k} threads={t}");
        }
    }

    #[test]
    fn parallel_decide_alias_still_accepted() {
        // The compatibility alias must keep producing sequential-identical
        // outcomes whatever core count it resolves to.
        let build = |parallel: bool| {
            let topo = Topology::torus(&[8, 8]);
            let w = Workload::uniform_random(64, 10.0, 11);
            let mut e = EngineBuilder::new(topo)
                .workload(w)
                .balancer(GreedyOne)
                .config(EngineConfig { parallel_decide: parallel, ..Default::default() })
                .seed(9)
                .build();
            e.run_rounds(25);
            e.drain(10.0);
            e.report()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn shard_layout_resolution() {
        let engine = |shards, threads| {
            EngineBuilder::new(Topology::torus(&[4, 4]))
                .balancer(NullBalancer)
                .config(EngineConfig { shards, threads, ..Default::default() })
                .build()
        };
        // Auto: one shard, one thread — the sequential reference.
        let e = engine(0, 0);
        assert_eq!(e.shard_layout().shards, 1);
        assert_eq!(e.shard_layout().boundary_nodes, 0);
        // The parallel_decide alias keeps the legacy n >= 64 cutoff: a
        // 16-node system stays on the inline single-shard sweep.
        let small = EngineBuilder::new(Topology::torus(&[4, 4]))
            .balancer(NullBalancer)
            .config(EngineConfig { parallel_decide: true, ..Default::default() })
            .build();
        assert_eq!(small.shard_layout().shards, 1);
        // Explicit K with explicit threads; threads cap at K.
        let e = engine(4, 8);
        assert_eq!(e.shard_layout().shards, 4);
        assert_eq!(e.shard_layout().threads, 4);
        // K clamps to the node count.
        let e = engine(99, 1);
        assert_eq!(e.shard_layout().shards, 16);
        assert_eq!(format!("{}", engine(2, 1).shard_layout()), "shards=2 threads=1 boundary=16");
    }

    #[test]
    fn quiescent_shards_are_skipped_for_stable_policies() {
        // NullBalancer is quiescence-stable and never emits: after the
        // first evaluated tick every shard goes clean and later rounds
        // skip all of them.
        let mut e = EngineBuilder::new(Topology::torus(&[4, 4]))
            .workload(Workload::hotspot(16, 0, 8.0))
            .balancer(NullBalancer)
            .config(EngineConfig { shards: 4, ..Default::default() })
            .seed(1)
            .build();
        e.run_rounds(10);
        let stats = e.shard_stats();
        assert_eq!(stats.ticks_evaluated, 4, "only the first tick evaluates");
        assert_eq!(stats.ticks_skipped, 36, "9 later ticks × 4 shards skip");
        assert_eq!(stats.nodes_evaluated, 16);
        // The skip changes nothing observable.
        assert_eq!(e.round(), 10);
        assert_eq!(e.report().series.len(), 11);
    }

    #[test]
    fn greedy_policy_is_not_skipped() {
        // GreedyOne keeps the default quiescence_stable = false, so every
        // shard is evaluated every tick even once converged.
        let mut e = EngineBuilder::new(Topology::torus(&[4, 4]))
            .workload(Workload::hotspot(16, 0, 8.0))
            .balancer(GreedyOne)
            .config(EngineConfig { shards: 4, ..Default::default() })
            .seed(1)
            .build();
        e.run_rounds(10);
        let stats = e.shard_stats();
        assert_eq!(stats.ticks_skipped, 0);
        assert_eq!(stats.ticks_evaluated, 40);
        assert_eq!(stats.nodes_evaluated, 160);
    }

    #[test]
    fn arrivals_wake_sleeping_shards() {
        // A quiescence-stable policy sleeps until a trace arrival touches a
        // node, which must wake (at least) the owning shard.
        use pp_tasking::workload::TraceEvent;
        let mut e = EngineBuilder::new(Topology::ring(8))
            .balancer(NullBalancer)
            .config(EngineConfig { shards: 4, ..Default::default() })
            .arrival_trace(vec![TraceEvent { time: 4.5, node: 5, size: 2.0 }])
            .seed(0)
            .build();
        e.run_rounds(10);
        let stats = e.shard_stats();
        // Tick 1 evaluates all 4 shards; the arrival before tick 5 wakes
        // node 5's shard (and its halo-adjacent neighbours) exactly once.
        assert!(stats.ticks_evaluated > 4, "arrival must re-evaluate a shard");
        assert!(stats.ticks_skipped > 0, "untouched shards keep sleeping");
        assert_eq!(e.heights()[5], 2.0);
    }

    #[test]
    fn report_fields_consistent() {
        let mut e = quiet_engine(GreedyOne);
        e.run_rounds(10);
        e.drain(10.0);
        let r = e.report();
        assert_eq!(r.balancer, "greedy-one");
        assert_eq!(r.rounds, 10);
        assert!(r.final_imbalance.mean > 0.0);
        assert_eq!(r.in_flight_load, 0.0);
        assert!((r.total_load - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "workload node count")]
    fn mismatched_workload_rejected() {
        let topo = Topology::ring(4);
        let w = Workload::hotspot(5, 0, 1.0);
        let _ = EngineBuilder::new(topo).workload(w).balancer(NullBalancer).build();
    }

    #[test]
    fn heterogeneous_speeds_scale_consumption() {
        // Node 0 runs at 2x, node 2 at 0.5x; equal initial loads drain
        // proportionally to speed.
        let topo = Topology::ring(4);
        let w = Workload::from_loads(&[8.0, 8.0, 8.0, 8.0], 1.0);
        let mut e = EngineBuilder::new(topo)
            .workload(w)
            .balancer(NullBalancer)
            .config(EngineConfig { consume_rate: 1.0, ..Default::default() })
            .node_speeds(vec![2.0, 1.0, 0.5, 1.0])
            .seed(0)
            .build();
        e.run_rounds(4);
        let h = e.heights();
        assert!((h[0] - 0.0).abs() < 1e-9, "{h:?}"); // 8 − 4·2 = 0
        assert!((h[1] - 4.0).abs() < 1e-9, "{h:?}"); // 8 − 4·1
        assert!((h[2] - 6.0).abs() < 1e-9, "{h:?}"); // 8 − 4·0.5
    }

    #[test]
    #[should_panic(expected = "speed vector length")]
    fn wrong_speed_length_rejected() {
        let _ = EngineBuilder::new(Topology::ring(4))
            .balancer(NullBalancer)
            .node_speeds(vec![1.0, 1.0])
            .build();
    }

    #[test]
    fn trace_replay_injects_exact_arrivals() {
        use pp_tasking::workload::TraceEvent;
        let topo = Topology::ring(4);
        let trace = vec![
            TraceEvent { time: 0.5, node: 1, size: 2.0 },
            TraceEvent { time: 1.5, node: 3, size: 1.0 },
            TraceEvent { time: 7.0, node: 1, size: 4.0 },
        ];
        let mut e =
            EngineBuilder::new(topo).balancer(NullBalancer).arrival_trace(trace).seed(0).build();
        e.run_rounds(2);
        // After t=2 only the first two records have landed.
        assert_eq!(e.heights(), vec![0.0, 2.0, 0.0, 1.0]);
        e.run_rounds(5);
        assert_eq!(e.heights(), vec![0.0, 6.0, 0.0, 1.0]);
        assert_eq!(e.state().total_tasks(), 3);
    }

    #[test]
    fn trace_replay_is_deterministic() {
        use pp_tasking::workload::{record_trace, ArrivalProcess};
        let p = ArrivalProcess::MovingHotspot { rate: 2.0, size: 1.0, dwell: 3.0, stride: 5 };
        let trace = record_trace(&p, 16, 30.0, 4);
        let run = || {
            let mut e = EngineBuilder::new(Topology::torus(&[4, 4]))
                .balancer(GreedyOne)
                .arrival_trace(trace.clone())
                .seed(2)
                .build();
            e.run_rounds(40);
            e.drain(20.0);
            e.report()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn trace_with_bad_node_rejected() {
        use pp_tasking::workload::TraceEvent;
        let _ = EngineBuilder::new(Topology::ring(4))
            .balancer(NullBalancer)
            .arrival_trace(vec![TraceEvent { time: 0.0, node: 9, size: 1.0 }])
            .build();
    }

    #[test]
    fn moving_hotspot_arrivals_land_on_schedule() {
        use pp_tasking::workload::ArrivalProcess;
        // With the null balancer every arrival stays where it lands; dwell
        // longer than the run keeps the target at node 0's epoch-0 slot.
        let mut e = EngineBuilder::new(Topology::ring(8))
            .balancer(NullBalancer)
            .config(EngineConfig {
                arrival: ArrivalProcess::MovingHotspot {
                    rate: 5.0,
                    size: 1.0,
                    dwell: 1000.0,
                    stride: 3,
                },
                ..Default::default()
            })
            .seed(5)
            .build();
        e.run_rounds(20);
        let h = e.heights();
        let elsewhere: f64 = h.iter().enumerate().filter(|&(i, _)| i != 0).map(|(_, &x)| x).sum();
        assert!(h[0] > 0.0, "hotspot node got nothing: {h:?}");
        assert_eq!(elsewhere, 0.0, "arrivals leaked off the hotspot: {h:?}");
    }

    /// The full-event-mix engine used by the checkpoint tests: faults,
    /// Poisson arrivals, consumption, a replay trace — every dynamic-state
    /// source at once.
    fn busy_engine(shards: usize, threads: usize) -> Engine {
        use pp_tasking::workload::TraceEvent;
        let topo = Topology::torus(&[8, 8]);
        let w = Workload::uniform_random(64, 6.0, 3);
        EngineBuilder::new(topo)
            .workload(w)
            .balancer(GreedyOne)
            .config(EngineConfig {
                shards,
                threads,
                consume_rate: 0.2,
                fault_model: Some(FaultModel { p_down: 0.05, p_up: 0.5 }),
                arrival: ArrivalProcess::Poisson { rate: 2.0, size_min: 0.5, size_max: 1.5 },
                ..Default::default()
            })
            .arrival_trace(vec![
                TraceEvent { time: 3.5, node: 11, size: 2.0 },
                TraceEvent { time: 14.5, node: 40, size: 1.0 },
            ])
            .seed(17)
            .build()
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_to_straight_run() {
        let mut straight = busy_engine(1, 1);
        straight.run_rounds(24);
        straight.drain(20.0);

        let mut first = busy_engine(1, 1);
        first.run_rounds(9);
        let cp = first.checkpoint();
        // Through the serialized form, so the JSON round-trip is on the
        // tested path, not just the in-memory struct.
        let cp = Checkpoint::from_json(&cp.to_json()).expect("round trip");
        let mut resumed = busy_engine(1, 1);
        resumed.restore(&cp).expect("restore");
        resumed.run_rounds(15);
        resumed.drain(20.0);

        assert_eq!(resumed.report(), straight.report());
        assert_eq!(resumed.heights(), straight.heights());
        assert_eq!(resumed.round(), straight.round());
        assert_eq!(resumed.down_link_count(), straight.down_link_count());
    }

    #[test]
    fn checkpoint_crosses_shard_layouts_exactly() {
        // Write under one layout, resume under others: per-node RNG streams
        // and the rest of the dynamic state are layout-independent, so
        // every combination must land on the same report.
        let mut straight = busy_engine(1, 1);
        straight.run_rounds(20);
        let want = straight.report();

        let mut writer = busy_engine(4, 2);
        writer.run_rounds(8);
        let cp = Checkpoint::from_json(&writer.checkpoint().to_json()).expect("round trip");
        for (k, t) in [(1, 1), (3, 1), (16, 4)] {
            let mut resumed = busy_engine(k, t);
            resumed.restore(&cp).expect("restore");
            resumed.run_rounds(12);
            assert_eq!(resumed.report(), want, "resume under K={k} threads={t}");
        }
    }

    #[test]
    fn checkpoint_preserves_quiescence_skip_state_on_same_layout() {
        // A quiescence-stable policy asleep at capture time stays asleep
        // after a same-layout restore (the dirty flags ride along).
        let build = || {
            EngineBuilder::new(Topology::torus(&[4, 4]))
                .workload(Workload::hotspot(16, 0, 8.0))
                .balancer(NullBalancer)
                .config(EngineConfig { shards: 4, ..Default::default() })
                .seed(1)
                .build()
        };
        let mut e = build();
        e.run_rounds(4);
        let cp = e.checkpoint();
        let mut r = build();
        r.restore(&cp).expect("restore");
        r.run_rounds(6);
        e.run_rounds(6);
        assert_eq!(r.shard_stats(), e.shard_stats());
        assert_eq!(r.shard_stats().ticks_evaluated, 4, "no re-evaluation after restore");
    }

    #[test]
    fn restore_rejects_mismatched_fingerprints() {
        let mut e = busy_engine(1, 1);
        e.run_rounds(5);
        let cp = e.checkpoint();
        // Wrong topology size.
        let mut other = quiet_engine(GreedyOne);
        assert!(other.restore(&cp).unwrap_err().contains("nodes"));
        // Wrong balancer (same topology and trace, so only the name trips).
        use pp_tasking::workload::TraceEvent;
        let mut wrong_policy = EngineBuilder::new(Topology::torus(&[8, 8]))
            .workload(Workload::uniform_random(64, 6.0, 3))
            .balancer(NullBalancer)
            .arrival_trace(vec![
                TraceEvent { time: 3.5, node: 11, size: 2.0 },
                TraceEvent { time: 14.5, node: 40, size: 1.0 },
            ])
            .build();
        assert!(wrong_policy.restore(&cp).unwrap_err().contains("balancer"));
        // Wrong trace length.
        let mut no_trace = EngineBuilder::new(Topology::torus(&[8, 8]))
            .workload(Workload::uniform_random(64, 6.0, 3))
            .balancer(GreedyOne)
            .build();
        assert!(no_trace.restore(&cp).unwrap_err().contains("trace"));
    }

    #[test]
    fn restore_rejects_corrupt_snapshots_without_panicking() {
        let mut e = busy_engine(1, 1);
        e.run_rounds(6);
        let good = e.checkpoint();
        let mut fresh = busy_engine(1, 1);

        let mut bad = good.clone();
        bad.node_heights[3] = f64::NAN;
        assert!(fresh.restore(&bad).is_err());

        let mut bad = good.clone();
        bad.queue.push((1.0, bad.queue_seq + 7, Event::TaskArrival));
        assert!(fresh.restore(&bad).is_err(), "seq above counter");

        let mut bad = good.clone();
        bad.queue.push((5.0, bad.queue_seq - 1, Event::LoadArrival { flight: 999 }));
        assert!(fresh.restore(&bad).is_err(), "dangling flight slot");

        let mut bad = good.clone();
        bad.free_slots.push(usize::MAX);
        assert!(fresh.restore(&bad).is_err(), "free slot out of range");

        let mut bad = good.clone();
        bad.down_words.push(0);
        assert!(fresh.restore(&bad).is_err(), "bitset word count");

        let mut bad = good.clone();
        bad.series.push((0.0, 0.0)); // time regresses
        assert!(fresh.restore(&bad).is_err(), "series time order");

        // Non-finite floats anywhere in the accumulated state: a JSON
        // `1e999` parses to infinity and must be refused, not replayed
        // into the totals.
        let mut bad = good.clone();
        bad.stats.height_sq_sum = f64::INFINITY;
        assert!(fresh.restore(&bad).is_err(), "non-finite stats");

        let mut bad = good.clone();
        bad.node_rngs[7] = [0; 4];
        assert!(fresh.restore(&bad).is_err(), "zeroed RNG state");

        let mut bad = good.clone();
        assert!(!bad.ledger.is_empty(), "busy engine must have migrated");
        bad.ledger[0].heat = f64::INFINITY;
        assert!(fresh.restore(&bad).is_err(), "non-finite ledger record");

        let mut bad = good.clone();
        bad.series[1].1 = f64::NAN;
        assert!(fresh.restore(&bad).is_err(), "non-finite series value");

        let mut bad = good.clone();
        let i = bad.node_tasks.iter().position(|t| !t.is_empty()).expect("resident tasks exist");
        bad.node_tasks[i][0].work = -1.0;
        assert!(fresh.restore(&bad).is_err(), "negative task work");

        // Temporal corruption that is finite and internally ordered but
        // inconsistent with the clock: both would panic post-restore
        // (series push order, event-loop time regression) if accepted.
        let mut bad = good.clone();
        let k = bad.series.len() - 1;
        bad.series[k].0 = bad.time + 100.0;
        assert!(fresh.restore(&bad).is_err(), "series beyond the clock");

        let mut bad = good.clone();
        bad.queue_seq += 1; // fresh unused seq so only the time check trips
        bad.queue.insert(0, (0.0, bad.queue_seq - 1, Event::TaskArrival));
        assert!(fresh.restore(&bad).is_err(), "event before the clock");

        // An occupied slot whose arrival event is missing would leak the
        // load (and its in-flight mass) forever.
        let mut bad = good.clone();
        if let Some(at) =
            bad.queue.iter().position(|&(_, _, e)| matches!(e, Event::LoadArrival { .. }))
        {
            bad.queue.remove(at);
            assert!(fresh.restore(&bad).is_err(), "orphaned in-flight load");
        }

        // An empty slot missing from the free list would shift every later
        // slab allocation off the straight run's slot sequence.
        let mut bad = good.clone();
        if let Some(&s) = bad.free_slots.first() {
            bad.free_slots.retain(|&x| x != s);
            assert!(fresh.restore(&bad).is_err(), "leaked free slot");
        }

        // Shard vectors inconsistent with the recorded capture layout are
        // corruption, not a layout change.
        let mut bad = good.clone();
        bad.shard_dirty.push(true);
        assert!(fresh.restore(&bad).is_err(), "shard vector length mismatch");

        // After all those rejections the engine is still fully usable and
        // accepts the good snapshot.
        fresh.restore(&good).expect("good snapshot still restores");
        assert_eq!(fresh.round(), 6);
    }

    /// [`GreedyOne`] with the quiescence-stable contract: `decide` is a
    /// pure, draw-free function of the view, so a clean shard re-emits
    /// nothing — which also makes it a legal event-strategy skipper.
    struct GreedyStable;
    impl LoadBalancer for GreedyStable {
        fn name(&self) -> &str {
            "greedy-stable"
        }
        fn decide(&self, view: &NodeView<'_>, rng: &mut StdRng) -> Vec<MigrationIntent> {
            GreedyOne.decide(view, rng)
        }
        fn quiescence_stable(&self) -> bool {
            true
        }
    }

    /// Event-strategy workhorse: a stable policy over a draining workload
    /// with consumption and a replay trace, so runs go quiescent, get
    /// woken by an arrival, and go quiescent again.
    fn stable_engine(strategy: SimulationStrategy, shards: usize, threads: usize) -> Engine {
        use pp_tasking::workload::TraceEvent;
        let topo = Topology::torus(&[8, 8]);
        let w = Workload::uniform_random(64, 6.0, 3);
        EngineBuilder::new(topo)
            .workload(w)
            .balancer(GreedyStable)
            .config(EngineConfig {
                shards,
                threads,
                consume_rate: 0.5,
                strategy,
                ..Default::default()
            })
            .arrival_trace(vec![
                TraceEvent { time: 3.5, node: 11, size: 2.0 },
                TraceEvent { time: 30.5, node: 40, size: 1.0 },
            ])
            .seed(17)
            .build()
    }

    #[test]
    fn event_strategy_matches_tick_byte_for_byte() {
        let mut tick = stable_engine(SimulationStrategy::Tick, 1, 1);
        tick.run_rounds(60);
        tick.drain(20.0);
        let want = tick.report();
        for (k, t) in [(1, 1), (3, 1), (4, 2), (16, 4)] {
            let mut ev = stable_engine(SimulationStrategy::Event, k, t);
            ev.run_rounds(60);
            ev.drain(20.0);
            assert_eq!(ev.report(), want, "event K={k} threads={t}");
            assert_eq!(ev.heights(), tick.heights(), "event K={k} threads={t}");
        }
    }

    #[test]
    fn event_strategy_actually_skips_rounds() {
        // Same run as above, but check the diagnostic counters: once the
        // load drains the event engine stops sweeping entirely, while the
        // K=1 tick reference evaluates its shard every single round.
        let mut tick = stable_engine(SimulationStrategy::Tick, 1, 1);
        tick.run_rounds(60);
        let mut ev = stable_engine(SimulationStrategy::Event, 1, 1);
        ev.run_rounds(60);
        assert_eq!(tick.shard_stats().ticks_evaluated, 60);
        let evaluated = ev.shard_stats().ticks_evaluated;
        assert!(evaluated < 55, "expected skipped rounds, evaluated {evaluated}");
        assert_eq!(ev.report(), tick.report());
    }

    #[test]
    fn drained_system_stops_sweeping_entirely() {
        // A system that fully drains (no migrations, pure consumption):
        // once empty the event engine's sweep counters freeze — the cost of
        // the remaining rounds tracks activity, not `nodes × rounds`.
        let build = |strategy| {
            EngineBuilder::new(Topology::torus(&[4, 4]))
                .workload(Workload::from_loads(&[4.0; 16], 1.0))
                .balancer(NullBalancer)
                .config(EngineConfig { consume_rate: 1.0, strategy, ..Default::default() })
                .seed(0)
                .build()
        };
        let mut ev = build(SimulationStrategy::Event);
        ev.run_rounds(50);
        let evaluated = ev.shard_stats().ticks_evaluated;
        assert!(evaluated <= 6, "drain takes ~4 rounds, saw {evaluated} sweeps");
        ev.run_rounds(100);
        assert_eq!(ev.shard_stats().ticks_evaluated, evaluated, "drained tail must not sweep");
        assert_eq!(ev.round(), 150);
        assert_eq!(ev.report().series.len(), 151, "every skipped round still samples the CoV");
        assert_eq!(ev.next_wake(), None);

        let mut tick = build(SimulationStrategy::Tick);
        tick.run_rounds(150);
        assert_eq!(ev.report(), tick.report());
    }

    #[test]
    fn event_strategy_with_full_mix_falls_back_to_tick_path() {
        // Faults + a non-stable policy: nothing is skippable, so the event
        // engine must traverse the identical code path round for round.
        let build = |strategy| {
            let mut e = EngineBuilder::new(Topology::torus(&[8, 8]))
                .workload(Workload::uniform_random(64, 6.0, 3))
                .balancer(GreedyOne)
                .config(EngineConfig {
                    consume_rate: 0.2,
                    fault_model: Some(FaultModel { p_down: 0.05, p_up: 0.5 }),
                    arrival: ArrivalProcess::Poisson { rate: 2.0, size_min: 0.5, size_max: 1.5 },
                    strategy,
                    ..Default::default()
                })
                .seed(17)
                .build();
            e.run_rounds(40);
            e.drain(20.0);
            e.report()
        };
        assert_eq!(build(SimulationStrategy::Tick), build(SimulationStrategy::Event));
    }

    #[test]
    fn next_wake_of_quiescent_system_is_the_queue_time() {
        use pp_tasking::workload::TraceEvent;
        let mut e = EngineBuilder::new(Topology::ring(8))
            .balancer(NullBalancer)
            .config(EngineConfig { strategy: SimulationStrategy::Event, ..Default::default() })
            .arrival_trace(vec![TraceEvent { time: 7.3, node: 5, size: 2.0 }])
            .seed(0)
            .build();
        e.run_rounds(2);
        // The shard went clean on round 1; the only pending wake is the
        // trace arrival, exactly as queued.
        assert_eq!(e.next_wake(), Some(7.3));
        assert_eq!(e.next_wake(), e.queue.peek_time());
        // Still quiescent right before the arrival: the wake stays the
        // queued event, earlier than the upcoming tick at t = 8.
        e.run_rounds(5);
        assert_eq!(e.next_wake(), Some(7.3));
        // Round 8 lands the arrival and re-sweeps the shard clean; with
        // the queue empty, nothing is ever going to wake the system.
        e.run_rounds(1);
        assert_eq!(e.next_wake(), None);

        // A dirty shard, by contrast, wakes at the upcoming tick: a
        // greedy-stable policy mid-spread keeps emitting, so its shard
        // stays dirty between rounds.
        let mut busy = EngineBuilder::new(Topology::ring(8))
            .workload(Workload::hotspot(8, 0, 16.0))
            .balancer(GreedyStable)
            .config(EngineConfig { strategy: SimulationStrategy::Event, ..Default::default() })
            .seed(1)
            .build();
        busy.run_rounds(1);
        let tick = busy.next_tick;
        assert_eq!(busy.next_wake(), Some(tick.min(busy.queue.peek_time().unwrap())));
    }

    #[test]
    fn checkpoint_crosses_strategies_exactly() {
        // Capture under Tick, resume under Event — and the reverse — must
        // both land on the straight runs' (identical) reports.
        let straight = |strategy| {
            let mut e = stable_engine(strategy, 4, 2);
            e.run_rounds(50);
            e.drain(20.0);
            e.report()
        };
        let want = straight(SimulationStrategy::Tick);
        assert_eq!(want, straight(SimulationStrategy::Event));

        for (write, resume) in [
            (SimulationStrategy::Tick, SimulationStrategy::Event),
            (SimulationStrategy::Event, SimulationStrategy::Tick),
        ] {
            let mut first = stable_engine(write, 4, 2);
            first.run_rounds(20);
            let cp = Checkpoint::from_json(&first.checkpoint().to_json()).expect("round trip");
            let mut resumed = stable_engine(resume, 4, 2);
            resumed.restore(&cp).expect("restore");
            resumed.run_rounds(30);
            resumed.drain(20.0);
            assert_eq!(resumed.report(), want, "{write} -> {resume}");
        }
    }

    /// A moving-hotspot engine: arrivals concentrate on one walking node,
    /// so per-shard sweep load is persistently skewed — the regime
    /// adaptive repartitioning exists for.
    fn hotspot_engine(
        strategy: SimulationStrategy,
        shards: usize,
        threads: usize,
        repartition: Option<RepartitionConfig>,
    ) -> Engine {
        EngineBuilder::new(Topology::torus(&[8, 8]))
            .balancer(GreedyStable)
            .config(EngineConfig {
                shards,
                threads,
                strategy,
                repartition,
                arrival: ArrivalProcess::MovingHotspot {
                    rate: 6.0,
                    size: 1.0,
                    dwell: 8.0,
                    stride: 13,
                },
                ..Default::default()
            })
            .seed(23)
            .build()
    }

    const ADAPTIVE: RepartitionConfig = RepartitionConfig { every: 4, skew_threshold: 1.5 };

    #[test]
    fn adaptive_repartition_fires_and_keeps_report_bytes() {
        let mut adaptive = hotspot_engine(SimulationStrategy::Tick, 8, 1, Some(ADAPTIVE));
        adaptive.run_rounds(60);
        adaptive.drain(20.0);
        assert!(adaptive.repartitions() > 0, "skewed hotspot load must trigger repartitioning");
        // K is invariant under adaptation (only the cut points move), which
        // is what lets the pinned pool keep its workers.
        assert_eq!(adaptive.partition().shard_count(), 8);

        let mut statik = hotspot_engine(SimulationStrategy::Tick, 8, 1, None);
        statik.run_rounds(60);
        statik.drain(20.0);
        // Repartitioning mutates no simulation state and draws no RNG:
        // every recorded artifact is identical to the static run's.
        assert_eq!(adaptive.report(), statik.report());
        assert_eq!(adaptive.heights(), statik.heights());
    }

    #[test]
    fn adaptive_repartition_infinite_threshold_never_fires() {
        // `--verify-repartition`'s degenerate config: check every round,
        // fire never. Must be byte-identical to static *and* apply zero
        // repartitions.
        let knob = RepartitionConfig { every: 1, skew_threshold: f64::INFINITY };
        let mut measured = hotspot_engine(SimulationStrategy::Tick, 8, 1, Some(knob));
        measured.run_rounds(40);
        measured.drain(10.0);
        assert_eq!(measured.repartitions(), 0);

        let mut statik = hotspot_engine(SimulationStrategy::Tick, 8, 1, None);
        statik.run_rounds(40);
        statik.drain(10.0);
        assert_eq!(measured.report(), statik.report());
    }

    #[test]
    fn adaptive_repartition_crosses_layouts_and_strategies() {
        let run = |strategy, k, t| {
            let mut e = hotspot_engine(strategy, k, t, Some(ADAPTIVE));
            e.run_rounds(50);
            e.drain(20.0);
            e.report()
        };
        let want = run(SimulationStrategy::Tick, 1, 1);
        for (k, t) in [(4, 1), (8, 2), (16, 4)] {
            assert_eq!(want, run(SimulationStrategy::Tick, k, t), "tick K={k} T={t}");
            assert_eq!(want, run(SimulationStrategy::Event, k, t), "event K={k} T={t}");
        }
    }

    #[test]
    fn checkpoint_crosses_adaptive_repartitioning() {
        // Capture mid-run from an engine that has already repartitioned,
        // resume under a different (shards, threads) execution layout with
        // the knob still on: the report must land on the straight run's
        // exact bytes.
        let mut straight = hotspot_engine(SimulationStrategy::Tick, 8, 1, Some(ADAPTIVE));
        straight.run_rounds(60);
        straight.drain(20.0);
        let want = straight.report();

        let mut writer = hotspot_engine(SimulationStrategy::Tick, 8, 1, Some(ADAPTIVE));
        writer.run_rounds(25);
        assert!(writer.repartitions() > 0, "capture must happen after an adaptation");
        let cp = Checkpoint::from_json(&writer.checkpoint().to_json()).expect("round trip");
        for (k, t) in [(8, 1), (4, 2), (16, 4)] {
            let mut resumed = hotspot_engine(SimulationStrategy::Tick, k, t, Some(ADAPTIVE));
            resumed.restore(&cp).expect("restore");
            resumed.run_rounds(35);
            resumed.drain(20.0);
            assert_eq!(resumed.report(), want, "adaptive resume under K={k} threads={t}");
        }
    }

    #[test]
    fn run_until_balanced_stops_early() {
        let mut e = quiet_engine(GreedyOne);
        let rounds = e.run_until_balanced(0.5, 3, 500);
        assert!(rounds < 500, "should converge before the cap: {rounds}");
        let im = Imbalance::of(&e.heights());
        assert!(im.cov <= 0.5, "cov {}", im.cov);
    }

    #[test]
    fn run_until_balanced_respects_cap() {
        // The null balancer never improves a hotspot: the cap is hit.
        let mut e = quiet_engine(NullBalancer);
        let rounds = e.run_until_balanced(0.1, 3, 20);
        assert_eq!(rounds, 20);
        assert_eq!(e.round(), 20);
    }

    use crate::churn::{ChurnEvent, ChurnPlan};

    #[test]
    fn leaving_node_drains_round_robin_to_live_neighbours() {
        // Ring of 4, all load on node 0; node 0 leaves at round 2. Its
        // tasks must split round-robin over neighbours 1 and 3 (ascending
        // order), and the node must be dark afterwards.
        let plan = ChurnPlan::new(vec![ChurnEvent { round: 2, node: 0, leave: true }]);
        let mut e = EngineBuilder::new(Topology::ring(4))
            .workload(Workload::from_loads(&[8.0, 0.0, 0.0, 0.0], 1.0))
            .balancer(NullBalancer)
            .churn(plan)
            .seed(1)
            .build();
        e.run_rounds(1);
        assert_eq!(e.down_node_count(), 0);
        assert_eq!(e.heights()[0], 8.0);
        e.run_rounds(1);
        assert_eq!(e.down_node_count(), 1);
        let h = e.heights();
        assert_eq!(h[0], 0.0, "leaver drained: {h:?}");
        assert_eq!(h[1], 4.0, "{h:?}");
        assert_eq!(h[3], 4.0, "{h:?}");
        assert!((e.system_load() - 8.0).abs() < 1e-9, "drain conserves load");
    }

    #[test]
    fn isolated_leaver_freezes_tasks_until_rejoin() {
        // Ring of 4: nodes 1 and 3 leave first, so when node 0 leaves it
        // has no live receiver — its tasks freeze in place, are not
        // consumed, and thaw when it rejoins.
        let ev = |round, node, leave| ChurnEvent { round, node, leave };
        let plan =
            ChurnPlan::new(vec![ev(1, 1, true), ev(1, 3, true), ev(2, 0, true), ev(5, 0, false)]);
        let mut e = EngineBuilder::new(Topology::ring(4))
            .workload(Workload::from_loads(&[4.0, 0.0, 0.0, 0.0], 1.0))
            .balancer(NullBalancer)
            .config(EngineConfig { consume_rate: 1.0, ..Default::default() })
            .churn(plan)
            .seed(0)
            .build();
        e.run_rounds(4);
        // Two units consumed before the leave takes effect at the round-2
        // tick (the interval [1, 2) is consumed before the tick fires);
        // frozen since.
        assert_eq!(e.down_node_count(), 3);
        assert!((e.heights()[0] - 2.0).abs() < 1e-9, "{:?}", e.heights());
        e.run_rounds(3);
        // Rejoined at round 5: consumption resumed.
        assert_eq!(e.down_node_count(), 2);
        assert!(e.heights()[0] < 2.0, "{:?}", e.heights());
    }

    #[test]
    fn launches_at_down_nodes_are_refused() {
        // Node 1 (the greedy hotspot's only low neighbour on a path-like
        // ring segment) leaves before the hotspot can push to it; the
        // masked edge must refuse the launch instead of teleporting load
        // onto a dark node.
        let plan = ChurnPlan::new(vec![ChurnEvent { round: 1, node: 1, leave: true }]);
        let mut e = EngineBuilder::new(Topology::ring(4))
            .workload(Workload::hotspot(4, 0, 8.0))
            .balancer(GreedyOne)
            .churn(plan)
            .seed(2)
            .build();
        e.run_rounds(10);
        e.drain(10.0);
        assert_eq!(e.heights()[1], 0.0, "down node must stay empty: {:?}", e.heights());
        assert!((e.system_load() - 8.0).abs() < 1e-9);
    }

    fn churny_engine(strategy: SimulationStrategy, shards: usize, threads: usize) -> Engine {
        use pp_tasking::workload::TraceEvent;
        let topo = Topology::torus(&[8, 8]);
        let w = Workload::uniform_random(64, 6.0, 3);
        EngineBuilder::new(topo)
            .workload(w)
            .balancer(GreedyStable)
            .config(EngineConfig {
                shards,
                threads,
                consume_rate: 0.3,
                strategy,
                ..Default::default()
            })
            .arrival_trace(vec![
                TraceEvent { time: 3.5, node: 11, size: 2.0 },
                TraceEvent { time: 30.5, node: 40, size: 1.0 },
            ])
            .churn(ChurnPlan::markov(64, 40, 0.02, 0.25, 77))
            .seed(17)
            .build()
    }

    #[test]
    fn churned_run_is_identical_across_layouts() {
        let mut seq = churny_engine(SimulationStrategy::Tick, 1, 1);
        seq.run_rounds(45);
        seq.drain(20.0);
        let want = seq.report();
        for (k, t) in [(4, 1), (8, 2), (16, 4)] {
            let mut e = churny_engine(SimulationStrategy::Tick, k, t);
            e.run_rounds(45);
            e.drain(20.0);
            assert_eq!(e.report(), want, "K={k} threads={t}");
            assert_eq!(e.heights(), seq.heights(), "K={k} threads={t}");
        }
    }

    #[test]
    fn churned_event_strategy_matches_tick() {
        let mut tick = churny_engine(SimulationStrategy::Tick, 1, 1);
        tick.run_rounds(60);
        tick.drain(20.0);
        let want = tick.report();
        for (k, t) in [(1, 1), (4, 2)] {
            let mut ev = churny_engine(SimulationStrategy::Event, k, t);
            ev.run_rounds(60);
            ev.drain(20.0);
            assert_eq!(ev.report(), want, "event K={k} threads={t}");
        }
    }

    #[test]
    fn checkpoint_resume_crosses_churn_exactly() {
        let mut straight = churny_engine(SimulationStrategy::Tick, 1, 1);
        straight.run_rounds(40);
        straight.drain(20.0);
        let want = straight.report();

        let mut writer = churny_engine(SimulationStrategy::Tick, 4, 2);
        writer.run_rounds(15);
        assert!(writer.down_node_count() > 0, "capture should land mid-churn");
        let cp = Checkpoint::from_json(&writer.checkpoint().to_json()).expect("round trip");
        for (k, t) in [(1, 1), (8, 4)] {
            let mut resumed = churny_engine(SimulationStrategy::Tick, k, t);
            resumed.restore(&cp).expect("restore");
            assert_eq!(resumed.down_node_count(), writer.down_node_count());
            resumed.run_rounds(25);
            resumed.drain(20.0);
            assert_eq!(resumed.report(), want, "churned resume under K={k} threads={t}");
        }
    }

    #[test]
    fn restore_rejects_mismatched_churn_plans() {
        let mut writer = churny_engine(SimulationStrategy::Tick, 1, 1);
        writer.run_rounds(10);
        let cp = writer.checkpoint();
        // An engine without the plan must refuse the churned checkpoint.
        let mut plain = stable_engine(SimulationStrategy::Tick, 1, 1);
        let err = plain.restore(&cp).unwrap_err();
        assert!(err.contains("churn"), "{err}");
    }

    #[test]
    fn path_topology_runs_a_full_balance_cycle() {
        // Tree { arity: 1 } is a path — the degenerate-but-legal shape that
        // pairs with the hypercube dim-0 rejection: arity 1 must keep
        // building and balancing end to end.
        let spec = pp_topology::spec::TopologySpec::Tree { arity: 1, depth: 7 };
        spec.validate().expect("arity-1 trees (paths) stay valid");
        let topo = spec.build();
        assert_eq!(topo.node_count(), 8);
        let mut e = EngineBuilder::new(topo)
            .workload(Workload::hotspot(8, 0, 16.0))
            .balancer(GreedyOne)
            .seed(3)
            .build();
        e.run_rounds(200);
        e.drain(20.0);
        let im = Imbalance::of(&e.heights());
        assert!(im.cov < 0.8, "path diffusion must make progress: {:?}", e.heights());
        assert!((e.system_load() - 16.0).abs() < 1e-9);
    }
}
