//! The discrete-event multiprocessor engine.
//!
//! Time advances event-to-event; balance rounds fire every `tick` time
//! units. At each round the engine snapshots the height map, lets the
//! policy refresh per-round state ([`LoadBalancer::begin_round`]), collects
//! per-node decisions (optionally in parallel — decisions are pure functions
//! of the snapshot), validates and launches the migrations. In-flight loads
//! occupy the network for `d + size/bw` time units, may hit link faults
//! (retried with the configured budget, bounced back to the source when it
//! is exhausted), and on landing may be *forwarded onward* by policies with
//! in-motion behaviour (the paper's sliding object, §5.1).
//!
//! Between events each node optionally consumes work (`consume_rate`),
//! completing and removing tasks, and a dynamic [`ArrivalProcess`] may
//! inject new tasks — the non-quiescent regime of §1.

use crate::balancer::{
    build_view, GlobalView, LinkView, LoadBalancer, MigratingLoad, MigrationIntent, ViewScratch,
};
use crate::events::{Event, EventQueue};
use crate::pool::WorkerPool;
use crate::state::SystemState;
use pp_metrics::imbalance::Imbalance;
use pp_metrics::ledger::{MigrationRecord, TrafficLedger};
use pp_metrics::series::TimeSeries;
use pp_tasking::graph::TaskGraph;
use pp_tasking::resources::ResourceMatrix;
use pp_tasking::task::{Task, TaskIdGen};
use pp_tasking::workload::{validate_trace, ArrivalProcess, TraceEvent, Workload};
use pp_topology::edgeset::EdgeBitSet;
use pp_topology::graph::{EdgeId, NodeId, Topology};
use pp_topology::links::{LinkAttrs, LinkMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Dynamic link fault process: at every balance tick each up link goes down
/// with probability `p_down`, each down link recovers with probability
/// `p_up`.
#[derive(Debug, Clone, Copy)]
pub struct FaultModel {
    /// Probability an up link fails this round.
    pub p_down: f64,
    /// Probability a down link recovers this round.
    pub p_up: f64,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Interval between balance rounds.
    pub tick: f64,
    /// The constant `c` in the link weight `e_{i,j}` formula.
    pub weight_c: f64,
    /// Work consumed per node per time unit (0 = quiescent redistribution).
    pub consume_rate: f64,
    /// Transfer attempts per hop before the load bounces back.
    pub max_attempts: u32,
    /// Evaluate per-node decisions on multiple threads.
    pub parallel_decide: bool,
    /// Dynamic link up/down process (None = all links always up).
    pub fault_model: Option<FaultModel>,
    /// Dynamic task arrivals.
    pub arrival: ArrivalProcess,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            tick: 1.0,
            weight_c: 1.0,
            consume_rate: 0.0,
            max_attempts: 3,
            parallel_decide: false,
            fault_model: None,
            arrival: ArrivalProcess::Quiescent,
        }
    }
}

/// One partition of the parallel decision sweep: disjoint slices of the
/// decision buffers and per-node RNGs, claimed by exactly one worker.
type DecisionPartition<'a> = Mutex<(&'a mut [Vec<MigrationIntent>], &'a mut [StdRng])>;

#[derive(Debug, Clone, Copy)]
struct Flight {
    load: MigratingLoad,
    from: NodeId,
    to: NodeId,
    link_weight: f64,
    heat: f64,
    attempts: u32,
    bounced: bool,
}

/// Summary of a finished run. `PartialEq` compares every recorded artifact
/// (series, ledger, totals), so equality means the runs were outcome-
/// identical — used by the determinism tests comparing sequential and
/// parallel decision sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Policy name.
    pub balancer: String,
    /// Balance rounds executed.
    pub rounds: u64,
    /// Final simulation time.
    pub time: f64,
    /// Imbalance of the final height map.
    pub final_imbalance: Imbalance,
    /// CoV time series (sampled after every round).
    pub series: TimeSeries,
    /// Migration/traffic ledger.
    pub ledger: TrafficLedger,
    /// Total resident load at the end.
    pub total_load: f64,
    /// Load still in flight at the end.
    pub in_flight_load: f64,
    /// Tasks completed by work consumption.
    pub completed_tasks: usize,
}

impl RunReport {
    /// First round index at which the CoV dropped to ≤ `eps` and stayed
    /// there for `window` samples.
    pub fn converged_round(&self, eps: f64, window: usize) -> Option<f64> {
        self.series.converged_at(eps, window)
    }
}

/// The simulation engine. Build with [`EngineBuilder`].
pub struct Engine {
    state: SystemState,
    balancer: Box<dyn LoadBalancer>,
    config: EngineConfig,
    queue: EventQueue,
    time: f64,
    next_tick: f64,
    round: u64,
    flights: Vec<Option<Flight>>,
    free_slots: Vec<usize>,
    node_rngs: Vec<StdRng>,
    engine_rng: StdRng,
    ledger: TrafficLedger,
    series: TimeSeries,
    idgen: TaskIdGen,
    /// Edge-indexed set of links currently down.
    down_links: EdgeBitSet,
    /// Precomputed `e_{i,j}` per edge id for `config.weight_c`.
    link_weights: Vec<f64>,
    /// Per-node decision slots, kept across ticks. Each sweep overwrites a
    /// slot with the Vec `decide` returns — empty (capacity-free) in steady
    /// state, so quiescent rounds neither allocate nor free; a tick with
    /// migrations pays one Vec per emitting node.
    decisions: Vec<Vec<MigrationIntent>>,
    /// View scratch for the sequential sweep and in-motion arrivals.
    scratch: ViewScratch,
    /// Lazily created persistent worker pool for `parallel_decide`.
    pool: Option<WorkerPool>,
    /// Per-node speed multipliers on `consume_rate` (empty = homogeneous).
    speeds: Vec<f64>,
    /// Recorded arrival trace being replayed (indexed by `TraceArrival`).
    trace: Vec<TraceEvent>,
    in_flight_load: f64,
    completed_tasks: usize,
}

impl Engine {
    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Immutable system state.
    pub fn state(&self) -> &SystemState {
        &self.state
    }

    /// Current height map.
    pub fn heights(&self) -> Vec<f64> {
        self.state.heights()
    }

    /// Load currently in flight.
    pub fn in_flight_load(&self) -> f64 {
        self.in_flight_load
    }

    /// Total load in the system (resident + in flight).
    pub fn system_load(&self) -> f64 {
        self.state.total_load() + self.in_flight_load
    }

    /// Links currently down.
    pub fn down_link_count(&self) -> usize {
        self.down_links.count()
    }

    /// Pre-reserves metric storage for `n` further rounds, so recording a
    /// sample during a tick never reallocates (useful for allocation-free
    /// steady-state measurement).
    pub fn reserve_rounds(&mut self, n: u64) {
        self.series.reserve(n as usize);
    }

    /// Runs `n` balance rounds (processing all intervening events) and
    /// returns the engine for chaining.
    pub fn run_rounds(&mut self, n: u64) -> &mut Self {
        for _ in 0..n {
            // Draining may have carried the clock past the scheduled tick.
            let t = self.next_tick.max(self.time);
            self.process_events_until(t);
            self.advance_time_to(t);
            self.fire_tick();
            self.next_tick = self.time + self.config.tick;
        }
        self
    }

    /// Runs rounds until the height CoV stays at or below `eps` for
    /// `window` consecutive rounds, or `max_rounds` have been executed.
    /// Returns the number of rounds run by this call.
    pub fn run_until_balanced(&mut self, eps: f64, window: usize, max_rounds: u64) -> u64 {
        let window = window.max(1);
        let mut streak = 0usize;
        for i in 0..max_rounds {
            self.run_rounds(1);
            let cov = self.state.cov();
            if cov <= eps {
                streak += 1;
                if streak >= window {
                    return i + 1;
                }
            } else {
                streak = 0;
            }
        }
        max_rounds
    }

    /// Processes pending events (in-flight loads, arrivals) for up to
    /// `extra_time` without firing further balance rounds — used to drain
    /// the network at the end of a run.
    pub fn drain(&mut self, extra_time: f64) -> &mut Self {
        let deadline = self.time + extra_time;
        self.process_events_until(deadline);
        // Consume work up to the next scheduled tick, but never rewind.
        let target = deadline.min(self.next_tick).max(self.time);
        self.advance_time_to(target);
        self
    }

    /// Builds the final report (cheap clone of the recorded metrics).
    pub fn report(&self) -> RunReport {
        RunReport {
            balancer: self.balancer.name().to_string(),
            rounds: self.round,
            time: self.time,
            final_imbalance: Imbalance::of(self.state.height_slice()),
            series: self.series.clone(),
            ledger: self.ledger.clone(),
            total_load: self.state.total_load(),
            in_flight_load: self.in_flight_load,
            completed_tasks: self.completed_tasks,
        }
    }

    fn process_events_until(&mut self, t: f64) {
        while let Some(et) = self.queue.peek_time() {
            if et > t {
                break;
            }
            let (et, event) = self.queue.pop().expect("peeked");
            self.advance_time_to(et);
            match event {
                Event::BalanceTick => unreachable!("ticks are driven by run_rounds"),
                Event::LoadArrival { flight } => self.handle_arrival(flight),
                Event::TaskArrival => self.handle_task_arrival(),
                Event::TraceArrival { record } => self.handle_trace_arrival(record),
            }
        }
    }

    /// Advances the clock to `t`, consuming work on every node (scaled by
    /// the node's speed multiplier when heterogeneous speeds are set).
    fn advance_time_to(&mut self, t: f64) {
        let dt = t - self.time;
        debug_assert!(dt >= -1e-9, "time went backwards: {} -> {}", self.time, t);
        if dt > 0.0 && self.config.consume_rate > 0.0 {
            let amount = dt * self.config.consume_rate;
            for i in 0..self.state.node_count() {
                let scaled = if self.speeds.is_empty() { amount } else { amount * self.speeds[i] };
                if scaled > 0.0 {
                    let (done, _) = self.state.consume_work(NodeId(i as u32), scaled);
                    self.completed_tasks += done;
                }
            }
        }
        self.time = self.time.max(t);
    }

    fn fire_tick(&mut self) {
        self.round += 1;
        self.update_faults();

        let global = GlobalView {
            topo: &self.state.topo,
            heights: self.state.height_slice(),
            round: self.round,
            time: self.time,
        };
        self.balancer.begin_round(&global);

        self.collect_decisions();
        // Swap the decision buffers out so `launch` may mutate state while
        // we drain them; the buffers (and their capacity) come back after.
        let mut decisions = std::mem::take(&mut self.decisions);
        for (i, intents) in decisions.iter_mut().enumerate() {
            for intent in intents.drain(..) {
                self.launch(NodeId(i as u32), intent);
            }
        }
        self.decisions = decisions;
        self.series.push(self.time, self.state.cov());
    }

    fn update_faults(&mut self) {
        let Some(fm) = self.config.fault_model else { return };
        for e in 0..self.state.topo.edge_count() as u32 {
            let e = EdgeId(e);
            if self.down_links.contains(e) {
                if self.engine_rng.gen_bool(fm.p_up) {
                    self.down_links.remove(e);
                }
            } else if self.engine_rng.gen_bool(fm.p_down) {
                self.down_links.insert(e);
            }
        }
    }

    /// The live edge between `u` and `v`, if both the edge exists and its
    /// link is up.
    fn live_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.state.topo.edge_index(u, v).filter(|&e| !self.down_links.contains(e))
    }

    /// Fills `self.decisions` with each node's migration intents for this
    /// tick. Decisions are pure functions of the tick-start height snapshot
    /// (nothing mutates state until the launch phase), so evaluating them
    /// sequentially or across the worker pool yields identical results.
    fn collect_decisions(&mut self) {
        let n = self.state.node_count();
        let round = self.round;
        let time = self.time;

        if self.config.parallel_decide && n >= 64 {
            let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
            let pool = self.pool.get_or_insert_with(|| WorkerPool::new(workers));
            let workers = pool.workers();
            let chunk = n.div_ceil(workers);
            let state = &self.state;
            let heights = state.height_slice();
            let links = LinkView {
                attrs: state.links().attrs(),
                weights: Some(&self.link_weights),
                weight_c: self.config.weight_c,
                down: if self.down_links.none_set() { None } else { Some(&self.down_links) },
            };
            let balancer = &*self.balancer;
            // Hand each partition its disjoint slice pair through a mutex;
            // exactly one worker executes each partition, so the lock is
            // uncontended — it exists to make the disjointness safe.
            let parts: Vec<DecisionPartition<'_>> = self
                .decisions
                .chunks_mut(chunk)
                .zip(self.node_rngs.chunks_mut(chunk))
                .map(Mutex::new)
                .collect();
            pool.run(&|part, scratch| {
                let Some(cell) = parts.get(part) else { return };
                let mut guard = cell.lock().expect("partition lock");
                let (dchunk, rchunk) = &mut *guard;
                let base = part * chunk;
                for (k, (slot, rng)) in dchunk.iter_mut().zip(rchunk.iter_mut()).enumerate() {
                    let node = NodeId((base + k) as u32);
                    let view = build_view(scratch, state, node, heights, &links, round, time);
                    *slot = balancer.decide(&view, rng);
                }
            });
        } else {
            let state = &self.state;
            let heights = state.height_slice();
            let links = LinkView {
                attrs: state.links().attrs(),
                weights: Some(&self.link_weights),
                weight_c: self.config.weight_c,
                down: if self.down_links.none_set() { None } else { Some(&self.down_links) },
            };
            let balancer = &*self.balancer;
            for i in 0..n {
                let node = NodeId(i as u32);
                let view = build_view(&mut self.scratch, state, node, heights, &links, round, time);
                self.decisions[i] = balancer.decide(&view, &mut self.node_rngs[i]);
            }
        }
    }

    /// Validates and launches one migration from `from`.
    fn launch(&mut self, from: NodeId, intent: MigrationIntent) {
        // Destination must be a live neighbour.
        let Some(edge) = self.live_edge(from, intent.to) else {
            return;
        };
        // Task must still be resident (a node might double-propose).
        let Some(task) = self.state.remove_task(from, intent.task) else {
            return;
        };
        let load = MigratingLoad { task, flag: intent.flag, hops: 0, source: from };
        self.launch_load(from, intent.to, edge, load, intent.heat);
    }

    fn launch_load(
        &mut self,
        from: NodeId,
        to: NodeId,
        edge: EdgeId,
        mut load: MigratingLoad,
        heat: f64,
    ) {
        let attrs = self.state.links().get(edge);
        let duration = attrs.transfer_time(load.task.size);
        // Attempts until first success are geometric in the per-try success
        // probability; sample the count directly with one uniform draw
        // instead of one Bernoulli draw per retry, then cap at the budget.
        // `G = 1 + ⌊ln(1−U)/ln(1−p)⌋`; the transfer bounces iff G exceeds
        // the budget.
        let p_ok = attrs.success_probability(duration).max(1e-12);
        let budget = self.config.max_attempts.max(1);
        let (attempts, bounced) = if p_ok >= 1.0 {
            (1, false)
        } else {
            let u: f64 = self.engine_rng.gen_range(0.0..1.0);
            let g = 1.0 + ((1.0 - u).ln() / (1.0 - p_ok).ln()).floor();
            if g > budget as f64 {
                (budget, true)
            } else {
                (g as u32, false)
            }
        };
        let (dest, bounced) = if bounced { (from, true) } else { (to, false) };
        load.hops += 1;
        let flight = Flight {
            load,
            from,
            to: dest,
            link_weight: self.link_weights[edge.idx()],
            heat,
            attempts,
            bounced,
        };
        self.in_flight_load += load.task.size;
        let slot = if let Some(s) = self.free_slots.pop() {
            self.flights[s] = Some(flight);
            s
        } else {
            self.flights.push(Some(flight));
            self.flights.len() - 1
        };
        self.queue
            .push(self.time + duration * attempts as f64, Event::LoadArrival { flight: slot });
    }

    fn handle_arrival(&mut self, slot: usize) {
        let flight = self.flights[slot].take().expect("dangling flight");
        self.free_slots.push(slot);
        self.in_flight_load -= flight.load.task.size;

        self.ledger.record(MigrationRecord {
            time: self.time,
            from: flight.from.0,
            to: flight.to.0,
            size: flight.load.task.size,
            link_weight: flight.link_weight,
            heat: flight.heat,
            faulted: flight.attempts > 1 || flight.bounced,
        });

        if flight.bounced {
            // The transfer failed for good; the load stays at its source.
            self.state.add_task(flight.to, flight.load.task);
            return;
        }

        // In-motion decision: may the load keep sliding (§5.1)?
        let links = LinkView {
            attrs: self.state.links().attrs(),
            weights: Some(&self.link_weights),
            weight_c: self.config.weight_c,
            down: if self.down_links.none_set() { None } else { Some(&self.down_links) },
        };
        let view = build_view(
            &mut self.scratch,
            &self.state,
            flight.to,
            self.state.height_slice(),
            &links,
            self.round,
            self.time,
        );
        let rng = &mut self.node_rngs[flight.to.idx()];
        let onward = self.balancer.on_arrival(&view, &flight.load, rng);
        match onward {
            Some(intent) => match self.live_edge(flight.to, intent.to) {
                Some(edge) => {
                    let mut load = flight.load;
                    load.flag = intent.flag;
                    self.launch_load(flight.to, intent.to, edge, load, intent.heat);
                }
                None => self.state.add_task(flight.to, flight.load.task),
            },
            None => self.state.add_task(flight.to, flight.load.task),
        }
    }

    fn handle_task_arrival(&mut self) {
        let n = self.state.node_count();
        if let Some((next, size)) = self.config.arrival.next_after(self.time, &mut self.engine_rng)
        {
            // Current arrival: the process picks the target (uniform for
            // all processes except the moving hotspot).
            let node = NodeId(self.config.arrival.target_node(self.time, n, &mut self.engine_rng));
            let task = Task::new(self.idgen.next_id(), size, node.0).created_at(self.time);
            self.state.add_task(node, task);
            self.queue.push(next, Event::TaskArrival);
        }
    }

    fn handle_trace_arrival(&mut self, record: usize) {
        let ev = self.trace[record];
        let task = Task::new(self.idgen.next_id(), ev.size, ev.node).created_at(self.time);
        self.state.add_task(NodeId(ev.node), task);
    }
}

/// Builder for [`Engine`].
pub struct EngineBuilder {
    topo: Topology,
    links: Option<LinkMap>,
    workload: Option<Workload>,
    task_graph: TaskGraph,
    resources: ResourceMatrix,
    balancer: Option<Box<dyn LoadBalancer>>,
    config: EngineConfig,
    speeds: Vec<f64>,
    trace: Vec<TraceEvent>,
    seed: u64,
}

impl EngineBuilder {
    /// Starts a builder for the given topology.
    pub fn new(topo: Topology) -> Self {
        EngineBuilder {
            topo,
            links: None,
            workload: None,
            task_graph: TaskGraph::new(),
            resources: ResourceMatrix::none(),
            balancer: None,
            config: EngineConfig::default(),
            speeds: Vec::new(),
            trace: Vec::new(),
            seed: 0,
        }
    }

    /// Sets link attributes (default: uniform unit links).
    pub fn links(mut self, links: LinkMap) -> Self {
        self.links = Some(links);
        self
    }

    /// Sets the initial workload (default: empty system).
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = Some(w);
        self
    }

    /// Sets the task dependency graph.
    pub fn task_graph(mut self, g: TaskGraph) -> Self {
        self.task_graph = g;
        self
    }

    /// Sets the resource matrix.
    pub fn resources(mut self, r: ResourceMatrix) -> Self {
        self.resources = r;
        self
    }

    /// Sets the balancing policy (required).
    pub fn balancer<B: LoadBalancer + 'static>(mut self, b: B) -> Self {
        self.balancer = Some(Box::new(b));
        self
    }

    /// Sets the boxed balancing policy.
    pub fn balancer_boxed(mut self, b: Box<dyn LoadBalancer>) -> Self {
        self.balancer = Some(b);
        self
    }

    /// Sets the engine configuration.
    pub fn config(mut self, c: EngineConfig) -> Self {
        self.config = c;
        self
    }

    /// Sets per-node speed multipliers on `consume_rate` — heterogeneous
    /// processors where some nodes retire work faster than others. An empty
    /// vector (the default) means homogeneous unit speed.
    pub fn node_speeds(mut self, speeds: Vec<f64>) -> Self {
        self.speeds = speeds;
        self
    }

    /// Schedules a recorded arrival trace for replay: every record becomes
    /// one arrival event at its absolute time, on its node, with its size.
    /// Composes with the dynamic [`ArrivalProcess`] (both inject tasks).
    pub fn arrival_trace(mut self, trace: Vec<TraceEvent>) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the master seed for all randomness.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Builds the engine.
    ///
    /// # Panics
    /// Panics if no balancer was provided, the workload size does not match
    /// the topology, the speed vector has the wrong length or non-positive
    /// entries, or the arrival trace fails validation.
    pub fn build(self) -> Engine {
        let balancer = self.balancer.expect("a balancer is required");
        if !self.speeds.is_empty() {
            assert_eq!(
                self.speeds.len(),
                self.topo.node_count(),
                "speed vector length must match the topology"
            );
            assert!(
                self.speeds.iter().all(|&s| s.is_finite() && s > 0.0),
                "node speeds must be finite and positive"
            );
        }
        validate_trace(&self.trace, self.topo.node_count()).expect("invalid arrival trace");
        let links =
            self.links.unwrap_or_else(|| LinkMap::uniform(&self.topo, LinkAttrs::default()));
        let mut state = SystemState::new(self.topo, links, self.task_graph, self.resources);
        let mut idgen = TaskIdGen::new();
        if let Some(w) = self.workload {
            assert_eq!(
                w.tasks.len(),
                state.node_count(),
                "workload node count must match the topology"
            );
            idgen = w.idgen.clone();
            for (i, tasks) in w.tasks.into_iter().enumerate() {
                for t in tasks {
                    state.add_task(NodeId(i as u32), t);
                }
            }
        }
        let n = state.node_count();
        let link_weights = state.links().weights(self.config.weight_c);
        let edge_count = state.topo.edge_count();
        let mix = |i: u64| -> u64 {
            // SplitMix64-style mixing for independent per-node streams.
            let mut z = self.seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let node_rngs = (0..n as u64).map(|i| StdRng::seed_from_u64(mix(i + 1))).collect();
        let engine_rng = StdRng::seed_from_u64(mix(0));
        let mut engine = Engine {
            state,
            balancer,
            config: self.config,
            queue: EventQueue::new(),
            time: 0.0,
            next_tick: self.config.tick,
            round: 0,
            flights: Vec::new(),
            free_slots: Vec::new(),
            node_rngs,
            engine_rng,
            ledger: TrafficLedger::new(),
            series: TimeSeries::new(),
            idgen,
            down_links: EdgeBitSet::new(edge_count),
            link_weights,
            decisions: (0..n).map(|_| Vec::new()).collect(),
            scratch: ViewScratch::new(),
            pool: None,
            speeds: self.speeds,
            trace: self.trace,
            in_flight_load: 0.0,
            completed_tasks: 0,
        };
        engine.series.push(0.0, engine.state.cov());
        if !matches!(engine.config.arrival, ArrivalProcess::Quiescent) {
            engine.queue.push(0.0, Event::TaskArrival);
        }
        for (record, ev) in engine.trace.iter().enumerate() {
            engine.queue.push(ev.time, Event::TraceArrival { record });
        }
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::{NodeView, NullBalancer};

    /// Moves one unit-size task to the lowest neighbour whenever the height
    /// difference exceeds 1 — a minimal working policy for engine tests.
    struct GreedyOne;
    impl LoadBalancer for GreedyOne {
        fn name(&self) -> &str {
            "greedy-one"
        }
        fn decide(&self, view: &NodeView<'_>, _rng: &mut StdRng) -> Vec<MigrationIntent> {
            let Some(task) = view.tasks.first() else { return Vec::new() };
            let Some(lowest) = view.neighbors.iter().min_by(|a, b| a.height.total_cmp(&b.height))
            else {
                return Vec::new();
            };
            if view.height - lowest.height > 1.0 {
                vec![MigrationIntent { task: task.id, to: lowest.id, flag: 0.0, heat: 0.0 }]
            } else {
                Vec::new()
            }
        }
    }

    fn quiet_engine(balancer: impl LoadBalancer + 'static) -> Engine {
        let topo = Topology::ring(4);
        let workload = Workload::hotspot(4, 0, 8.0);
        EngineBuilder::new(topo).workload(workload).balancer(balancer).seed(1).build()
    }

    #[test]
    fn null_balancer_changes_nothing() {
        let mut e = quiet_engine(NullBalancer);
        let before = e.heights();
        e.run_rounds(10);
        assert_eq!(e.heights(), before);
        assert_eq!(e.report().ledger.migration_count(), 0);
        assert_eq!(e.round(), 10);
    }

    #[test]
    fn greedy_policy_spreads_hotspot() {
        let mut e = quiet_engine(GreedyOne);
        e.run_rounds(60);
        e.drain(10.0);
        let h = e.heights();
        let im = Imbalance::of(&h);
        assert!(im.spread <= 2.0, "heights {h:?}");
        // Load is conserved (quiescent system).
        assert!((e.system_load() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn load_conservation_with_in_flight() {
        let mut e = quiet_engine(GreedyOne);
        // After every round, resident + in-flight must equal the initial 8.
        for _ in 0..20 {
            e.run_rounds(1);
            assert!((e.system_load() - 8.0).abs() < 1e-9);
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let topo = Topology::torus(&[4, 4]);
            let w = Workload::uniform_random(16, 10.0, 3);
            let mut e = EngineBuilder::new(topo).workload(w).balancer(GreedyOne).seed(seed).build();
            e.run_rounds(30);
            e.heights()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn series_records_initial_and_per_round() {
        let mut e = quiet_engine(NullBalancer);
        e.run_rounds(5);
        let r = e.report();
        assert_eq!(r.series.len(), 6); // t=0 plus 5 rounds
        assert_eq!(r.rounds, 5);
    }

    #[test]
    fn work_consumption_completes_tasks() {
        let topo = Topology::ring(4);
        let w = Workload::from_loads(&[4.0, 0.0, 0.0, 0.0], 1.0);
        let mut e = EngineBuilder::new(topo)
            .workload(w)
            .balancer(NullBalancer)
            .config(EngineConfig { consume_rate: 1.0, ..Default::default() })
            .seed(0)
            .build();
        e.run_rounds(2);
        // 2 time units × rate 1 consumed 2 units of work on node 0.
        let r = e.report();
        assert_eq!(r.completed_tasks, 2);
        assert!((e.heights()[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_arrivals_inject_load() {
        let topo = Topology::ring(4);
        let mut e = EngineBuilder::new(topo)
            .balancer(NullBalancer)
            .config(EngineConfig {
                arrival: ArrivalProcess::Poisson { rate: 5.0, size_min: 1.0, size_max: 1.0 },
                ..Default::default()
            })
            .seed(7)
            .build();
        e.run_rounds(20);
        assert!(e.state().total_load() > 0.0);
        assert!(e.state().total_tasks() > 10);
    }

    #[test]
    fn fault_model_takes_links_down_and_up() {
        let topo = Topology::torus(&[4, 4]);
        let mut e = EngineBuilder::new(topo)
            .balancer(NullBalancer)
            .config(EngineConfig {
                fault_model: Some(FaultModel { p_down: 0.5, p_up: 0.1 }),
                ..Default::default()
            })
            .seed(3)
            .build();
        e.run_rounds(5);
        assert!(e.down_link_count() > 0, "expected some links down");
        // With p_up = 1.0 everything recovers.
        let mut e2 = EngineBuilder::new(Topology::torus(&[4, 4]))
            .balancer(NullBalancer)
            .config(EngineConfig {
                fault_model: Some(FaultModel { p_down: 0.0, p_up: 1.0 }),
                ..Default::default()
            })
            .seed(3)
            .build();
        e2.run_rounds(5);
        assert_eq!(e2.down_link_count(), 0);
    }

    #[test]
    fn faulty_links_bounce_loads_back() {
        // fault_prob near 1: every transfer fails all attempts and bounces.
        let topo = Topology::ring(4);
        let links = LinkMap::uniform(
            &topo,
            LinkAttrs { bandwidth: 1.0, distance: 1.0, fault_prob: 0.999_999 },
        );
        let w = Workload::hotspot(4, 0, 8.0);
        let mut e =
            EngineBuilder::new(topo).links(links).workload(w).balancer(GreedyOne).seed(2).build();
        e.run_rounds(10);
        e.drain(20.0);
        // All load is back (or still) at node 0; every record is a fault.
        assert!((e.heights()[0] - 8.0).abs() < 1e-9, "{:?}", e.heights());
        let r = e.report();
        assert!(r.ledger.migration_count() > 0);
        assert_eq!(r.ledger.fault_count(), r.ledger.migration_count());
    }

    #[test]
    fn parallel_decide_matches_sequential() {
        let build = |parallel: bool| {
            let topo = Topology::torus(&[8, 8]);
            let w = Workload::uniform_random(64, 10.0, 11);
            let mut e = EngineBuilder::new(topo)
                .workload(w)
                .balancer(GreedyOne)
                .config(EngineConfig { parallel_decide: parallel, ..Default::default() })
                .seed(9)
                .build();
            e.run_rounds(25);
            e.drain(10.0);
            (e.heights(), e.report())
        };
        let (h_seq, r_seq) = build(false);
        let (h_par, r_par) = build(true);
        assert_eq!(h_seq, h_par);
        // Not just final heights: every recorded artifact (CoV series,
        // migration ledger, totals) must be byte-identical.
        assert_eq!(r_seq, r_par);
    }

    #[test]
    fn parallel_decide_deterministic_with_faults_and_arrivals() {
        // The full event mix — fault process, Poisson arrivals, work
        // consumption — must still be seq/par identical, because all engine
        // RNG draws happen outside the decision sweep.
        let build = |parallel: bool| {
            let topo = Topology::torus(&[8, 8]);
            let w = Workload::uniform_random(64, 6.0, 3);
            let mut e = EngineBuilder::new(topo)
                .workload(w)
                .balancer(GreedyOne)
                .config(EngineConfig {
                    parallel_decide: parallel,
                    consume_rate: 0.2,
                    fault_model: Some(FaultModel { p_down: 0.05, p_up: 0.5 }),
                    arrival: ArrivalProcess::Poisson { rate: 2.0, size_min: 0.5, size_max: 1.5 },
                    ..Default::default()
                })
                .seed(17)
                .build();
            e.run_rounds(40);
            e.drain(20.0);
            e.report()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn report_fields_consistent() {
        let mut e = quiet_engine(GreedyOne);
        e.run_rounds(10);
        e.drain(10.0);
        let r = e.report();
        assert_eq!(r.balancer, "greedy-one");
        assert_eq!(r.rounds, 10);
        assert!(r.final_imbalance.mean > 0.0);
        assert_eq!(r.in_flight_load, 0.0);
        assert!((r.total_load - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "workload node count")]
    fn mismatched_workload_rejected() {
        let topo = Topology::ring(4);
        let w = Workload::hotspot(5, 0, 1.0);
        let _ = EngineBuilder::new(topo).workload(w).balancer(NullBalancer).build();
    }

    #[test]
    fn heterogeneous_speeds_scale_consumption() {
        // Node 0 runs at 2x, node 2 at 0.5x; equal initial loads drain
        // proportionally to speed.
        let topo = Topology::ring(4);
        let w = Workload::from_loads(&[8.0, 8.0, 8.0, 8.0], 1.0);
        let mut e = EngineBuilder::new(topo)
            .workload(w)
            .balancer(NullBalancer)
            .config(EngineConfig { consume_rate: 1.0, ..Default::default() })
            .node_speeds(vec![2.0, 1.0, 0.5, 1.0])
            .seed(0)
            .build();
        e.run_rounds(4);
        let h = e.heights();
        assert!((h[0] - 0.0).abs() < 1e-9, "{h:?}"); // 8 − 4·2 = 0
        assert!((h[1] - 4.0).abs() < 1e-9, "{h:?}"); // 8 − 4·1
        assert!((h[2] - 6.0).abs() < 1e-9, "{h:?}"); // 8 − 4·0.5
    }

    #[test]
    #[should_panic(expected = "speed vector length")]
    fn wrong_speed_length_rejected() {
        let _ = EngineBuilder::new(Topology::ring(4))
            .balancer(NullBalancer)
            .node_speeds(vec![1.0, 1.0])
            .build();
    }

    #[test]
    fn trace_replay_injects_exact_arrivals() {
        use pp_tasking::workload::TraceEvent;
        let topo = Topology::ring(4);
        let trace = vec![
            TraceEvent { time: 0.5, node: 1, size: 2.0 },
            TraceEvent { time: 1.5, node: 3, size: 1.0 },
            TraceEvent { time: 7.0, node: 1, size: 4.0 },
        ];
        let mut e =
            EngineBuilder::new(topo).balancer(NullBalancer).arrival_trace(trace).seed(0).build();
        e.run_rounds(2);
        // After t=2 only the first two records have landed.
        assert_eq!(e.heights(), vec![0.0, 2.0, 0.0, 1.0]);
        e.run_rounds(5);
        assert_eq!(e.heights(), vec![0.0, 6.0, 0.0, 1.0]);
        assert_eq!(e.state().total_tasks(), 3);
    }

    #[test]
    fn trace_replay_is_deterministic() {
        use pp_tasking::workload::{record_trace, ArrivalProcess};
        let p = ArrivalProcess::MovingHotspot { rate: 2.0, size: 1.0, dwell: 3.0, stride: 5 };
        let trace = record_trace(&p, 16, 30.0, 4);
        let run = || {
            let mut e = EngineBuilder::new(Topology::torus(&[4, 4]))
                .balancer(GreedyOne)
                .arrival_trace(trace.clone())
                .seed(2)
                .build();
            e.run_rounds(40);
            e.drain(20.0);
            e.report()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn trace_with_bad_node_rejected() {
        use pp_tasking::workload::TraceEvent;
        let _ = EngineBuilder::new(Topology::ring(4))
            .balancer(NullBalancer)
            .arrival_trace(vec![TraceEvent { time: 0.0, node: 9, size: 1.0 }])
            .build();
    }

    #[test]
    fn moving_hotspot_arrivals_land_on_schedule() {
        use pp_tasking::workload::ArrivalProcess;
        // With the null balancer every arrival stays where it lands; dwell
        // longer than the run keeps the target at node 0's epoch-0 slot.
        let mut e = EngineBuilder::new(Topology::ring(8))
            .balancer(NullBalancer)
            .config(EngineConfig {
                arrival: ArrivalProcess::MovingHotspot {
                    rate: 5.0,
                    size: 1.0,
                    dwell: 1000.0,
                    stride: 3,
                },
                ..Default::default()
            })
            .seed(5)
            .build();
        e.run_rounds(20);
        let h = e.heights();
        let elsewhere: f64 = h.iter().enumerate().filter(|&(i, _)| i != 0).map(|(_, &x)| x).sum();
        assert!(h[0] > 0.0, "hotspot node got nothing: {h:?}");
        assert_eq!(elsewhere, 0.0, "arrivals leaked off the hotspot: {h:?}");
    }

    #[test]
    fn run_until_balanced_stops_early() {
        let mut e = quiet_engine(GreedyOne);
        let rounds = e.run_until_balanced(0.5, 3, 500);
        assert!(rounds < 500, "should converge before the cap: {rounds}");
        let im = Imbalance::of(&e.heights());
        assert!(im.cov <= 0.5, "cov {}", im.cov);
    }

    #[test]
    fn run_until_balanced_respects_cap() {
        // The null balancer never improves a hotspot: the cap is hit.
        let mut e = quiet_engine(NullBalancer);
        let rounds = e.run_until_balanced(0.1, 3, 20);
        assert_eq!(rounds, 20);
        assert_eq!(e.round(), 20);
    }
}
