//! The discrete-event queue: a binary heap of time-stamped events with
//! deterministic FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Kinds of simulation events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A synchronous balance round fires.
    BalanceTick,
    /// An in-flight load lands (slab index into the engine's flight table).
    LoadArrival {
        /// Index into the engine's in-flight slab.
        flight: usize,
    },
    /// The dynamic arrival process injects a new task.
    TaskArrival,
    /// A recorded trace replays one arrival (index into the engine's trace
    /// table; the record carries node and size).
    TraceArrival {
        /// Index into the engine's replay trace.
        record: usize,
    },
}

#[derive(Debug)]
struct Entry {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: the heap is a max-heap, we want the earliest first; ties
        // break by insertion sequence for determinism.
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at absolute `time`.
    ///
    /// # Panics
    /// Panics unless `time` is finite and non-negative: `NaN` and `±∞` would
    /// wedge or starve the queue's total order, and the simulation clock
    /// never runs before t = 0, so a negative event time is always a caller
    /// bug. (Checkpoint restore validates before pushing and reports a
    /// `Result` instead — see [`EventQueue::from_entries`].)
    pub fn push(&mut self, time: f64, event: Event) {
        assert!(valid_time(time), "event time must be finite and non-negative, got {time}");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Pops the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Deterministic snapshot of every pending entry as `(time, seq, event)`
    /// triples sorted in pop order, plus the sequence counter — the
    /// checkpointable representation of the queue. Pop order is a total
    /// order (ties break by the unique `seq`), so rebuilding a heap from
    /// this list via [`EventQueue::from_entries`] reproduces exactly the
    /// same pop sequence whatever the original heap's internal layout was.
    pub fn snapshot(&self) -> (u64, Vec<(f64, u64, Event)>) {
        let mut entries: Vec<(f64, u64, Event)> =
            self.heap.iter().map(|e| (e.time, e.seq, e.event)).collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        (self.seq, entries)
    }

    /// Rebuilds a queue from a [`EventQueue::snapshot`]. Unlike
    /// [`EventQueue::push`] this validates instead of panicking, because the
    /// entries may come from an untrusted checkpoint file: every time must
    /// be finite and non-negative, entry sequence numbers must be unique and
    /// below the restored counter (so future pushes cannot collide and break
    /// the total order), and the list must be strictly `(time, seq)`-sorted
    /// — i.e. in pop order, the only order [`EventQueue::snapshot`] emits.
    /// A reordered snapshot is corruption and is rejected rather than
    /// silently re-sorted: same-time entries that swapped their `seq` order
    /// would otherwise restore to a *different* FIFO than the file claims
    /// to carry, and no later check would ever notice.
    pub fn from_entries(seq: u64, entries: &[(f64, u64, Event)]) -> Result<EventQueue, String> {
        let mut heap = BinaryHeap::with_capacity(entries.len());
        let mut seen: Vec<u64> = Vec::with_capacity(entries.len());
        for pair in entries.windows(2) {
            let (t0, s0, _) = pair[0];
            let (t1, s1, _) = pair[1];
            if t0.total_cmp(&t1).then_with(|| s0.cmp(&s1)) != Ordering::Less {
                return Err(format!(
                    "snapshot entries not in pop order: ({t0}, seq {s0}) precedes ({t1}, seq {s1})"
                ));
            }
        }
        for &(time, s, event) in entries {
            if !valid_time(time) {
                return Err(format!("event time {time} must be finite and non-negative"));
            }
            if s >= seq {
                return Err(format!("event seq {s} not below the restored counter {seq}"));
            }
            seen.push(s);
            heap.push(Entry { time, seq: s, event });
        }
        // Pop order is strict on (time, seq), but a seq may still repeat
        // across *different* times — catch that separately.
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err("duplicate event sequence numbers in snapshot".into());
        }
        Ok(EventQueue { heap, seq })
    }
}

/// The queue's time-validity rule, shared by the panicking [`EventQueue::push`]
/// and the error-returning [`EventQueue::from_entries`].
#[inline]
fn valid_time(time: f64) -> bool {
    time.is_finite() && time >= 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, Event::BalanceTick);
        q.push(1.0, Event::TaskArrival);
        q.push(2.0, Event::LoadArrival { flight: 0 });
        assert_eq!(q.pop().unwrap().0, 1.0);
        assert_eq!(q.pop().unwrap().0, 2.0);
        assert_eq!(q.pop().unwrap().0, 3.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::LoadArrival { flight: 1 });
        q.push(1.0, Event::LoadArrival { flight: 2 });
        q.push(1.0, Event::LoadArrival { flight: 3 });
        let order: Vec<usize> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                Event::LoadArrival { flight } => flight,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(5.0, Event::BalanceTick);
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, Event::BalanceTick);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_positive_infinity_time() {
        let mut q = EventQueue::new();
        q.push(f64::INFINITY, Event::BalanceTick);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_infinity_time() {
        let mut q = EventQueue::new();
        q.push(f64::NEG_INFINITY, Event::BalanceTick);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_time() {
        let mut q = EventQueue::new();
        q.push(-1e-9, Event::BalanceTick);
    }

    #[test]
    fn accepts_time_boundaries() {
        // The full accepted edge of the time domain: zero (including the
        // negative-zero bit pattern), subnormals, and f64::MAX.
        let mut q = EventQueue::new();
        q.push(0.0, Event::BalanceTick);
        q.push(-0.0, Event::BalanceTick);
        q.push(f64::MIN_POSITIVE / 2.0, Event::BalanceTick);
        q.push(f64::MAX, Event::BalanceTick);
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(0.0));
    }

    #[test]
    fn snapshot_restores_exact_pop_order() {
        let mut q = EventQueue::new();
        q.push(3.0, Event::TaskArrival);
        q.push(1.0, Event::LoadArrival { flight: 7 });
        q.push(1.0, Event::LoadArrival { flight: 9 });
        q.push(2.0, Event::TraceArrival { record: 4 });
        let _ = q.pop(); // consume one so the snapshot is mid-stream
        let (seq, entries) = q.snapshot();
        assert_eq!(seq, 4);
        assert_eq!(entries.len(), 3);
        let mut r = EventQueue::from_entries(seq, &entries).expect("valid snapshot");
        while let Some(expect) = q.pop() {
            assert_eq!(r.pop(), Some(expect));
        }
        assert!(r.pop().is_none());
        // The restored counter continues where the original left off.
        r.push(0.5, Event::BalanceTick);
        let (seq2, entries2) = r.snapshot();
        assert_eq!(seq2, 5);
        assert_eq!(entries2[0].1, 4);
    }

    #[test]
    fn snapshot_orders_same_time_entries_by_seq() {
        // Regression: snapshot ordering used to be exercised only with
        // distinct times, where `total_cmp` alone decides. With every entry
        // at one time the tie-break carries the whole order, and it must be
        // insertion (seq) order — the queue's FIFO discipline.
        let mut q = EventQueue::new();
        for flight in 0..6 {
            q.push(2.5, Event::LoadArrival { flight });
        }
        let (seq, entries) = q.snapshot();
        assert_eq!(seq, 6);
        let seqs: Vec<u64> = entries.iter().map(|&(_, s, _)| s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
        // And the restored queue pops the identical FIFO.
        let mut r = EventQueue::from_entries(seq, &entries).expect("valid snapshot");
        for want in 0..6 {
            assert_eq!(r.pop(), Some((2.5, Event::LoadArrival { flight: want })));
        }
    }

    #[test]
    fn from_entries_rejects_out_of_order_entries() {
        let ev = Event::TaskArrival;
        // Times out of order.
        let err = EventQueue::from_entries(5, &[(2.0, 0, ev), (1.0, 1, ev)]).unwrap_err();
        assert!(err.contains("pop order"), "{err}");
        // Same time, seq swapped: used to be silently re-sorted into a
        // different FIFO than the snapshot claims to carry.
        let err = EventQueue::from_entries(5, &[(1.0, 3, ev), (1.0, 2, ev)]).unwrap_err();
        assert!(err.contains("pop order"), "{err}");
        // Equal (time, seq) pairs are also not strictly increasing.
        assert!(EventQueue::from_entries(5, &[(1.0, 2, ev), (1.0, 2, ev)]).is_err());
        // The properly ordered forms all pass.
        assert!(EventQueue::from_entries(5, &[(1.0, 2, ev), (1.0, 3, ev)]).is_ok());
        assert!(EventQueue::from_entries(5, &[(1.0, 3, ev), (2.0, 2, ev)]).is_ok());
    }

    #[test]
    fn from_entries_rejects_bad_snapshots() {
        let ev = Event::TaskArrival;
        // Non-finite / negative times error instead of panicking.
        assert!(EventQueue::from_entries(1, &[(f64::NAN, 0, ev)]).is_err());
        assert!(EventQueue::from_entries(1, &[(f64::INFINITY, 0, ev)]).is_err());
        assert!(EventQueue::from_entries(1, &[(-1.0, 0, ev)]).is_err());
        // Seq at/above the counter, or duplicated.
        assert!(EventQueue::from_entries(1, &[(0.0, 1, ev)]).is_err());
        assert!(EventQueue::from_entries(3, &[(0.0, 1, ev), (1.0, 1, ev)]).is_err());
        // A well-formed snapshot passes.
        assert!(EventQueue::from_entries(3, &[(0.0, 1, ev), (1.0, 2, ev)]).is_ok());
    }
}
