//! The discrete-event queue: a binary heap of time-stamped events with
//! deterministic FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Kinds of simulation events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A synchronous balance round fires.
    BalanceTick,
    /// An in-flight load lands (slab index into the engine's flight table).
    LoadArrival {
        /// Index into the engine's in-flight slab.
        flight: usize,
    },
    /// The dynamic arrival process injects a new task.
    TaskArrival,
    /// A recorded trace replays one arrival (index into the engine's trace
    /// table; the record carries node and size).
    TraceArrival {
        /// Index into the engine's replay trace.
        record: usize,
    },
}

#[derive(Debug)]
struct Entry {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: the heap is a max-heap, we want the earliest first; ties
        // break by insertion sequence for determinism.
        other.time.total_cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at absolute `time`.
    pub fn push(&mut self, time: f64, event: Event) {
        assert!(time.is_finite(), "event time must be finite");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Pops the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, Event::BalanceTick);
        q.push(1.0, Event::TaskArrival);
        q.push(2.0, Event::LoadArrival { flight: 0 });
        assert_eq!(q.pop().unwrap().0, 1.0);
        assert_eq!(q.pop().unwrap().0, 2.0);
        assert_eq!(q.pop().unwrap().0, 3.0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, Event::LoadArrival { flight: 1 });
        q.push(1.0, Event::LoadArrival { flight: 2 });
        q.push(1.0, Event::LoadArrival { flight: 3 });
        let order: Vec<usize> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                Event::LoadArrival { flight } => flight,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(5.0, Event::BalanceTick);
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_time() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, Event::BalanceTick);
    }
}
