//! Mutable system state: which tasks live on which node, per-node heights
//! (the `h(v)` map that forms the yard's surface), and the static system
//! description (topology, link matrices, task graph, resources).

use pp_tasking::graph::TaskGraph;
use pp_tasking::resources::ResourceMatrix;
use pp_tasking::task::{Task, TaskId};
use pp_topology::graph::{NodeId, Topology};
use pp_topology::links::LinkMap;

/// One processor's resident tasks.
#[derive(Debug, Clone, Default)]
pub struct NodeState {
    tasks: Vec<Task>,
    height: f64,
}

impl NodeState {
    /// Resident tasks, in arrival order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Total load quantity `h(v) = Σ_k l_{v,k}` (Table 1's `h`).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Number of resident tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Adds a task.
    pub fn add_task(&mut self, task: Task) {
        self.height += task.size;
        self.tasks.push(task);
    }

    /// Removes and returns the task with the given id, if resident.
    pub fn remove_task(&mut self, id: TaskId) -> Option<Task> {
        let pos = self.tasks.iter().position(|t| t.id == id)?;
        let task = self.tasks.remove(pos);
        self.height -= task.size;
        if self.height < 0.0 {
            self.height = 0.0; // guard against f64 drift
        }
        Some(task)
    }

    /// Whether a task with the given id is resident.
    pub fn has_task(&self, id: TaskId) -> bool {
        self.tasks.iter().any(|t| t.id == id)
    }

    /// Consumes up to `amount` of work from the queue front; completed tasks
    /// are removed entirely (their load leaves the system). Returns the list
    /// of completed task ids and the amount of work actually consumed.
    pub fn consume_work(&mut self, mut amount: f64) -> (Vec<TaskId>, f64) {
        let mut done = Vec::new();
        let mut consumed = 0.0;
        while amount > 0.0 {
            let Some(front) = self.tasks.first_mut() else { break };
            if front.work > amount {
                front.work -= amount;
                consumed += amount;
                break;
            }
            amount -= front.work;
            consumed += front.work;
            done.push(front.id);
            let t = self.tasks.remove(0);
            self.height -= t.size;
        }
        if self.height < 0.0 {
            self.height = 0.0;
        }
        (done, consumed)
    }
}

/// The whole system: static description plus per-node state.
#[derive(Debug, Clone)]
pub struct SystemState {
    /// The interconnection network.
    pub topo: Topology,
    /// Per-link bandwidth/distance/fault attributes.
    pub links: LinkMap,
    /// The task dependency graph `T`.
    pub task_graph: TaskGraph,
    /// The resource matrix `R`.
    pub resources: ResourceMatrix,
    nodes: Vec<NodeState>,
}

impl SystemState {
    /// Creates a state with empty nodes.
    pub fn new(
        topo: Topology,
        links: LinkMap,
        task_graph: TaskGraph,
        resources: ResourceMatrix,
    ) -> Self {
        let nodes = (0..topo.node_count()).map(|_| NodeState::default()).collect();
        SystemState { topo, links, task_graph, resources, nodes }
    }

    /// Immutable access to a node.
    pub fn node(&self, v: NodeId) -> &NodeState {
        &self.nodes[v.idx()]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, v: NodeId) -> &mut NodeState {
        &mut self.nodes[v.idx()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The height map `h(v)` over all nodes — the yard's surface.
    pub fn heights(&self) -> Vec<f64> {
        self.nodes.iter().map(NodeState::height).collect()
    }

    /// Total resident load (excludes in-flight loads).
    pub fn total_load(&self) -> f64 {
        self.nodes.iter().map(NodeState::height).sum()
    }

    /// Total resident task count.
    pub fn total_tasks(&self) -> usize {
        self.nodes.iter().map(NodeState::task_count).sum()
    }

    /// Ids of tasks co-located with (on the same node as) the given node —
    /// input to the `µ_s` affinity sum.
    pub fn colocated_ids(&self, v: NodeId) -> Vec<TaskId> {
        self.nodes[v.idx()].tasks().iter().map(|t| t.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_topology::links::LinkAttrs;

    fn task(id: u64, size: f64) -> Task {
        Task::new(TaskId(id), size, 0)
    }

    fn small_state() -> SystemState {
        let topo = Topology::ring(4);
        let links = LinkMap::uniform(&topo, LinkAttrs::default());
        SystemState::new(topo, links, TaskGraph::new(), ResourceMatrix::none())
    }

    #[test]
    fn add_remove_updates_height() {
        let mut n = NodeState::default();
        n.add_task(task(0, 2.0));
        n.add_task(task(1, 3.0));
        assert_eq!(n.height(), 5.0);
        assert_eq!(n.task_count(), 2);
        let t = n.remove_task(TaskId(0)).unwrap();
        assert_eq!(t.size, 2.0);
        assert_eq!(n.height(), 3.0);
        assert!(n.remove_task(TaskId(0)).is_none());
        assert!(n.has_task(TaskId(1)));
    }

    #[test]
    fn consume_work_partial() {
        let mut n = NodeState::default();
        n.add_task(task(0, 2.0));
        let (done, used) = n.consume_work(0.5);
        assert!(done.is_empty());
        assert_eq!(used, 0.5);
        assert_eq!(n.tasks()[0].work, 1.5);
        // Height only drops when the task completes.
        assert_eq!(n.height(), 2.0);
    }

    #[test]
    fn consume_work_completes_tasks_in_order() {
        let mut n = NodeState::default();
        n.add_task(task(0, 1.0));
        n.add_task(task(1, 1.0));
        n.add_task(task(2, 1.0));
        let (done, used) = n.consume_work(2.5);
        assert_eq!(done, vec![TaskId(0), TaskId(1)]);
        assert_eq!(used, 2.5);
        assert_eq!(n.height(), 1.0);
        assert_eq!(n.tasks()[0].work, 0.5);
    }

    #[test]
    fn consume_work_on_empty_node() {
        let mut n = NodeState::default();
        let (done, used) = n.consume_work(1.0);
        assert!(done.is_empty());
        assert_eq!(used, 0.0);
    }

    #[test]
    fn system_heights_and_totals() {
        let mut s = small_state();
        s.node_mut(NodeId(0)).add_task(task(0, 4.0));
        s.node_mut(NodeId(2)).add_task(task(1, 1.0));
        assert_eq!(s.heights(), vec![4.0, 0.0, 1.0, 0.0]);
        assert_eq!(s.total_load(), 5.0);
        assert_eq!(s.total_tasks(), 2);
        assert_eq!(s.colocated_ids(NodeId(0)), vec![TaskId(0)]);
    }
}
