//! Mutable system state: which tasks live on which node, per-node heights
//! (the `h(v)` map that forms the yard's surface), and the static system
//! description (topology, link matrices, task graph, resources).
//!
//! The height map and the imbalance sufficient statistics (`n`, `Σh`, `Σh²`)
//! are maintained *incrementally*: every task add/remove/consume goes
//! through [`SystemState`] mutators that diff the affected node's height, so
//! the per-tick hot path reads heights and the CoV without rebuilding
//! anything — [`SystemState::height_slice`] and [`SystemState::cov`] are
//! allocation-free O(1)/O(0) lookups.

use pp_tasking::graph::TaskGraph;
use pp_tasking::resources::ResourceMatrix;
use pp_tasking::task::{Task, TaskId};
use pp_topology::graph::{NodeId, Topology};
use pp_topology::links::{LinkMap, LinkTable};

/// One processor's resident tasks.
#[derive(Debug, Clone, Default)]
pub struct NodeState {
    tasks: Vec<Task>,
    height: f64,
}

impl NodeState {
    /// Resident tasks, in arrival order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Total load quantity `h(v) = Σ_k l_{v,k}` (Table 1's `h`).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Number of resident tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Adds a task.
    pub fn add_task(&mut self, task: Task) {
        self.height += task.size;
        self.tasks.push(task);
    }

    /// Removes and returns the task with the given id, if resident.
    pub fn remove_task(&mut self, id: TaskId) -> Option<Task> {
        let pos = self.tasks.iter().position(|t| t.id == id)?;
        let task = self.tasks.remove(pos);
        self.height -= task.size;
        if self.height < 0.0 {
            self.height = 0.0; // guard against f64 drift
        }
        Some(task)
    }

    /// Whether a task with the given id is resident.
    pub fn has_task(&self, id: TaskId) -> bool {
        self.tasks.iter().any(|t| t.id == id)
    }

    /// Consumes up to `amount` of work from the queue front; completed tasks
    /// are removed entirely (their load leaves the system). Returns the list
    /// of completed task ids and the amount of work actually consumed.
    pub fn consume_work(&mut self, amount: f64) -> (Vec<TaskId>, f64) {
        let mut done = Vec::new();
        let (_, consumed) = self.consume_work_with(amount, |id| done.push(id));
        (done, consumed)
    }

    /// Allocation-free [`NodeState::consume_work`]: returns only the number
    /// of completed tasks and the work consumed.
    pub fn consume_work_counted(&mut self, amount: f64) -> (usize, f64) {
        self.consume_work_with(amount, |_| {})
    }

    fn consume_work_with(
        &mut self,
        mut amount: f64,
        mut on_done: impl FnMut(TaskId),
    ) -> (usize, f64) {
        let mut completed = 0usize;
        let mut consumed = 0.0;
        while amount > 0.0 {
            let Some(front) = self.tasks.first_mut() else { break };
            if front.work > amount {
                front.work -= amount;
                consumed += amount;
                break;
            }
            amount -= front.work;
            consumed += front.work;
            on_done(front.id);
            completed += 1;
            let t = self.tasks.remove(0);
            self.height -= t.size;
        }
        if self.height < 0.0 {
            self.height = 0.0;
        }
        (completed, consumed)
    }
}

/// The whole system: static description plus per-node state.
#[derive(Debug, Clone)]
pub struct SystemState {
    /// The interconnection network.
    pub topo: Topology,
    /// The task dependency graph `T`.
    pub task_graph: TaskGraph,
    /// The resource matrix `R`.
    pub resources: ResourceMatrix,
    links: LinkTable,
    nodes: Vec<NodeState>,
    /// Height cache, mirrored exactly from `nodes[i].height()`.
    heights: Vec<f64>,
    /// Task-count cache, mirrored exactly from `nodes[i].task_count()` —
    /// the SoA twin of `heights`, so sweeps that only need "does node `i`
    /// hold work?" stream one flat `u32` array instead of striding over
    /// [`NodeState`] records (and their task vectors).
    task_counts: Vec<u32>,
    /// Total resident task count, maintained incrementally — the event
    /// strategy's O(1) "is there any work to consume?" gate.
    resident_tasks: usize,
    /// Incremental `Σh` over all nodes (imbalance sufficient statistic).
    height_sum: f64,
    /// Incremental `Σh²` over all nodes.
    height_sq_sum: f64,
    /// Height mutations since construction — with the peaks below, bounds
    /// the accumulated floating-point drift of the incremental sums.
    stat_ops: u64,
    /// Largest `|Σh|` magnitude the sum has reached.
    stat_peak_sum: f64,
    /// Largest `|Σh²|` magnitude the squared sum has reached (tracked
    /// separately: the two live in different units, and a shared bound
    /// would force the exact fallback whenever `Σh² ≫ Σh`).
    stat_peak_sq: f64,
}

impl SystemState {
    /// Creates a state with empty nodes. Link attributes are flattened over
    /// the topology's stable edge ids at construction; they are immutable
    /// afterwards.
    pub fn new(
        topo: Topology,
        links: LinkMap,
        task_graph: TaskGraph,
        resources: ResourceMatrix,
    ) -> Self {
        let n = topo.node_count();
        let links = LinkTable::new(&topo, &links);
        SystemState {
            topo,
            task_graph,
            resources,
            links,
            nodes: (0..n).map(|_| NodeState::default()).collect(),
            heights: vec![0.0; n],
            task_counts: vec![0; n],
            resident_tasks: 0,
            height_sum: 0.0,
            height_sq_sum: 0.0,
            stat_ops: 0,
            stat_peak_sum: 0.0,
            stat_peak_sq: 0.0,
        }
    }

    /// Immutable access to a node.
    pub fn node(&self, v: NodeId) -> &NodeState {
        &self.nodes[v.idx()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The edge-indexed link attribute table.
    pub fn links(&self) -> &LinkTable {
        &self.links
    }

    /// Adds a task to node `v`, updating the height cache and imbalance
    /// statistics.
    pub fn add_task(&mut self, v: NodeId, task: Task) {
        let old = self.nodes[v.idx()].height;
        self.nodes[v.idx()].add_task(task);
        self.resident_tasks += 1;
        self.task_counts[v.idx()] += 1;
        self.refresh_height(v, old);
    }

    /// Removes and returns the task with the given id from node `v`, if
    /// resident.
    pub fn remove_task(&mut self, v: NodeId, id: TaskId) -> Option<Task> {
        let old = self.nodes[v.idx()].height;
        let task = self.nodes[v.idx()].remove_task(id);
        if task.is_some() {
            self.resident_tasks -= 1;
            self.task_counts[v.idx()] -= 1;
            self.refresh_height(v, old);
        }
        task
    }

    /// Consumes up to `amount` of work on node `v`; returns the number of
    /// tasks completed and the work consumed. Allocation-free.
    pub fn consume_work(&mut self, v: NodeId, amount: f64) -> (usize, f64) {
        let old = self.nodes[v.idx()].height;
        let out = self.nodes[v.idx()].consume_work_counted(amount);
        self.resident_tasks -= out.0;
        self.task_counts[v.idx()] -= out.0 as u32;
        // A completed zero-work task changes the height without consuming
        // anything, so refresh on either signal.
        if out.0 > 0 || out.1 > 0.0 {
            self.refresh_height(v, old);
        }
        out
    }

    #[inline]
    fn refresh_height(&mut self, v: NodeId, old: f64) {
        let new = self.nodes[v.idx()].height;
        self.heights[v.idx()] = new;
        self.height_sum += new - old;
        self.height_sq_sum += new * new - old * old;
        self.stat_ops += 1;
        self.stat_peak_sum = self.stat_peak_sum.max(self.height_sum.abs());
        self.stat_peak_sq = self.stat_peak_sq.max(self.height_sq_sum.abs());
    }

    /// Upper bound on the floating-point drift `peak` can have accumulated:
    /// each of the `stat_ops` updates contributes at most one rounding of a
    /// value bounded by the peak magnitude (×8 safety).
    #[inline]
    fn drift_floor(&self, peak: f64) -> f64 {
        (self.stat_ops as f64 + 1.0) * f64::EPSILON * peak * 8.0
    }

    /// The height map `h(v)` over all nodes — the yard's surface. Borrowed
    /// view of the incrementally maintained cache; no allocation.
    #[inline]
    pub fn height_slice(&self) -> &[f64] {
        &self.heights
    }

    /// Per-node resident task counts as a flat slice, index-aligned with
    /// [`SystemState::height_slice`] — the consume sweep's "does node `i`
    /// hold work?" gate without touching the node records.
    #[inline]
    pub fn task_count_slice(&self) -> &[u32] {
        &self.task_counts
    }

    /// The height map as an owned vector (prefer
    /// [`SystemState::height_slice`] on hot paths).
    pub fn heights(&self) -> Vec<f64> {
        self.heights.clone()
    }

    /// Coefficient of variation `σ/µ` of the height map, from the
    /// incremental sufficient statistics — no pass over the nodes on the
    /// common path. Matches `Imbalance::of(heights).cov` up to
    /// floating-point accumulation order.
    ///
    /// When the incremental mean or variance is within the accumulated
    /// drift bound (e.g. a surface that has gone flat — `σ/µ` would divide
    /// two ulp-scale artifacts), the result is recomputed exactly from the
    /// height cache in one allocation-free pass.
    pub fn cov(&self) -> f64 {
        let n = self.nodes.len();
        if n == 0 {
            return 0.0;
        }
        let nf = n as f64;
        let mean = self.height_sum / nf;
        let var = self.height_sq_sum / nf - mean * mean;
        if self.height_sum.abs() <= self.drift_floor(self.stat_peak_sum)
            || var * nf <= self.drift_floor(self.stat_peak_sq)
        {
            return self.cov_exact();
        }
        var.sqrt() / mean
    }

    /// Two-pass CoV over the height cache: exact, allocation-free, O(n).
    fn cov_exact(&self) -> f64 {
        let n = self.heights.len();
        if n == 0 {
            return 0.0;
        }
        let nf = n as f64;
        let mean = self.heights.iter().sum::<f64>() / nf;
        if mean.abs() == 0.0 {
            return 0.0;
        }
        let var = self.heights.iter().map(|&h| (h - mean) * (h - mean)).sum::<f64>() / nf;
        var.sqrt() / mean
    }

    /// Mean node height, from the incremental statistics (drift-guarded the
    /// same way as [`SystemState::cov`]).
    pub fn mean_height(&self) -> f64 {
        let n = self.nodes.len();
        if n == 0 {
            return 0.0;
        }
        if self.height_sum.abs() <= self.drift_floor(self.stat_peak_sum) {
            return self.total_load() / n as f64;
        }
        self.height_sum / n as f64
    }

    /// Total resident load (excludes in-flight loads). Exact sum over the
    /// height cache (the incremental `Σh` is reserved for the CoV, where
    /// accumulation drift is tolerable).
    pub fn total_load(&self) -> f64 {
        self.heights.iter().sum()
    }

    /// Total resident task count (exact O(n) sum; the incremental counter
    /// behind [`SystemState::resident_tasks`] is checked against it in the
    /// state tests).
    pub fn total_tasks(&self) -> usize {
        self.nodes.iter().map(NodeState::task_count).sum()
    }

    /// Total resident task count from the incremental counter — O(1), so
    /// the event strategy can gate its consumption check per round without
    /// a node sweep.
    #[inline]
    pub fn resident_tasks(&self) -> usize {
        self.resident_tasks
    }

    /// Ids of tasks co-located with (on the same node as) the given node —
    /// input to the `µ_s` affinity sum.
    pub fn colocated_ids(&self, v: NodeId) -> Vec<TaskId> {
        self.nodes[v.idx()].tasks().iter().map(|t| t.id).collect()
    }

    /// Exact snapshot of the incremental imbalance statistics (checkpoint
    /// plumbing). The sums carry the accumulated floating-point history of
    /// every mutation since construction, so a byte-exact resume must
    /// restore them verbatim rather than recompute them from the heights.
    pub fn stat_snapshot(&self) -> StatSnapshot {
        StatSnapshot {
            height_sum: self.height_sum,
            height_sq_sum: self.height_sq_sum,
            stat_ops: self.stat_ops,
            stat_peak_sum: self.stat_peak_sum,
            stat_peak_sq: self.stat_peak_sq,
        }
    }

    /// Overwrites the incremental statistics with a captured
    /// [`SystemState::stat_snapshot`] (checkpoint plumbing; pair with
    /// [`SystemState::restore_node`] for every node).
    pub fn restore_stats(&mut self, s: StatSnapshot) {
        self.height_sum = s.height_sum;
        self.height_sq_sum = s.height_sq_sum;
        self.stat_ops = s.stat_ops;
        self.stat_peak_sum = s.stat_peak_sum;
        self.stat_peak_sq = s.stat_peak_sq;
    }

    /// Replaces node `v`'s resident tasks and height wholesale without
    /// touching the incremental statistics (checkpoint plumbing). `height`
    /// is the *accumulated* height recorded at capture time — it may differ
    /// from `Σ size` in the last ulp, which is exactly why it is restored
    /// verbatim instead of being recomputed.
    pub fn restore_node(&mut self, v: NodeId, tasks: Vec<Task>, height: f64) {
        let slot = &mut self.nodes[v.idx()];
        self.resident_tasks = self.resident_tasks - slot.tasks.len() + tasks.len();
        self.task_counts[v.idx()] = tasks.len() as u32;
        slot.tasks = tasks;
        slot.height = height;
        self.heights[v.idx()] = height;
    }
}

/// The five incremental imbalance statistics of a [`SystemState`], captured
/// exactly for checkpoint/resume (see [`SystemState::stat_snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatSnapshot {
    /// Incremental `Σh`.
    pub height_sum: f64,
    /// Incremental `Σh²`.
    pub height_sq_sum: f64,
    /// Height mutations since construction.
    pub stat_ops: u64,
    /// Largest `|Σh|` magnitude reached.
    pub stat_peak_sum: f64,
    /// Largest `|Σh²|` magnitude reached.
    pub stat_peak_sq: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_topology::links::LinkAttrs;

    fn task(id: u64, size: f64) -> Task {
        Task::new(TaskId(id), size, 0)
    }

    fn small_state() -> SystemState {
        let topo = Topology::ring(4);
        let links = LinkMap::uniform(&topo, LinkAttrs::default());
        SystemState::new(topo, links, TaskGraph::new(), ResourceMatrix::none())
    }

    #[test]
    fn add_remove_updates_height() {
        let mut n = NodeState::default();
        n.add_task(task(0, 2.0));
        n.add_task(task(1, 3.0));
        assert_eq!(n.height(), 5.0);
        assert_eq!(n.task_count(), 2);
        let t = n.remove_task(TaskId(0)).unwrap();
        assert_eq!(t.size, 2.0);
        assert_eq!(n.height(), 3.0);
        assert!(n.remove_task(TaskId(0)).is_none());
        assert!(n.has_task(TaskId(1)));
    }

    #[test]
    fn consume_work_partial() {
        let mut n = NodeState::default();
        n.add_task(task(0, 2.0));
        let (done, used) = n.consume_work(0.5);
        assert!(done.is_empty());
        assert_eq!(used, 0.5);
        assert_eq!(n.tasks()[0].work, 1.5);
        // Height only drops when the task completes.
        assert_eq!(n.height(), 2.0);
    }

    #[test]
    fn consume_work_completes_tasks_in_order() {
        let mut n = NodeState::default();
        n.add_task(task(0, 1.0));
        n.add_task(task(1, 1.0));
        n.add_task(task(2, 1.0));
        let (done, used) = n.consume_work(2.5);
        assert_eq!(done, vec![TaskId(0), TaskId(1)]);
        assert_eq!(used, 2.5);
        assert_eq!(n.height(), 1.0);
        assert_eq!(n.tasks()[0].work, 0.5);
    }

    #[test]
    fn consume_work_counted_matches_listing() {
        let mut a = NodeState::default();
        let mut b = NodeState::default();
        for i in 0..3 {
            a.add_task(task(i, 1.0));
            b.add_task(task(i, 1.0));
        }
        let (done, used_a) = a.consume_work(2.5);
        let (count, used_b) = b.consume_work_counted(2.5);
        assert_eq!(done.len(), count);
        assert_eq!(used_a, used_b);
        assert_eq!(a.height(), b.height());
    }

    #[test]
    fn consume_work_on_empty_node() {
        let mut n = NodeState::default();
        let (done, used) = n.consume_work(1.0);
        assert!(done.is_empty());
        assert_eq!(used, 0.0);
    }

    #[test]
    fn system_heights_and_totals() {
        let mut s = small_state();
        s.add_task(NodeId(0), task(0, 4.0));
        s.add_task(NodeId(2), task(1, 1.0));
        assert_eq!(s.heights(), vec![4.0, 0.0, 1.0, 0.0]);
        assert_eq!(s.height_slice(), &[4.0, 0.0, 1.0, 0.0]);
        assert_eq!(s.total_load(), 5.0);
        assert_eq!(s.total_tasks(), 2);
        assert_eq!(s.colocated_ids(NodeId(0)), vec![TaskId(0)]);
    }

    #[test]
    fn incremental_stats_track_mutations() {
        let mut s = small_state();
        s.add_task(NodeId(0), task(0, 4.0));
        s.add_task(NodeId(1), task(1, 2.0));
        s.add_task(NodeId(1), task(2, 2.0));
        let expect = pp_metrics::imbalance::Imbalance::of(s.height_slice());
        assert!((s.cov() - expect.cov).abs() < 1e-12, "{} vs {}", s.cov(), expect.cov);
        assert!((s.mean_height() - expect.mean).abs() < 1e-12);

        s.remove_task(NodeId(1), TaskId(1)).unwrap();
        s.consume_work(NodeId(0), 4.0); // completes the size-4 task
        let expect = pp_metrics::imbalance::Imbalance::of(s.height_slice());
        assert!((s.cov() - expect.cov).abs() < 1e-12, "{} vs {}", s.cov(), expect.cov);
        assert_eq!(s.heights(), vec![0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn zero_work_task_completion_refreshes_height() {
        // A task can carry load (size) but no work; completing it consumes
        // nothing yet still lowers the height — the cache must follow.
        let mut s = small_state();
        s.add_task(NodeId(1), Task::new(TaskId(0), 2.0, 1).with_work(0.0));
        assert_eq!(s.height_slice()[1], 2.0);
        let (done, used) = s.consume_work(NodeId(1), 1.0);
        assert_eq!((done, used), (1, 0.0));
        assert_eq!(s.height_slice()[1], 0.0);
        assert_eq!(s.total_load(), 0.0);
        assert_eq!(s.cov(), 0.0);
    }

    #[test]
    fn remove_missing_task_is_a_clean_noop() {
        let mut s = small_state();
        s.add_task(NodeId(0), task(0, 1.0));
        let cov = s.cov();
        assert!(s.remove_task(NodeId(2), TaskId(0)).is_none());
        assert_eq!(s.cov(), cov);
        assert_eq!(s.total_load(), 1.0);
    }

    #[test]
    fn empty_system_cov_is_zero() {
        let s = small_state();
        assert_eq!(s.cov(), 0.0);
        assert_eq!(s.mean_height(), 0.0);
        assert_eq!(s.total_load(), 0.0);
    }

    #[test]
    fn restore_round_trips_state_and_stats_exactly() {
        // Drive one state through a mutation history, capture it, replay the
        // capture into a fresh state, and require bit-identical behavior —
        // including the drift-bearing incremental sums.
        let mut s = small_state();
        for i in 0..40u64 {
            s.add_task(NodeId((i % 4) as u32), task(i, 0.1 * (i + 1) as f64));
        }
        for i in (0..40u64).step_by(3) {
            s.remove_task(NodeId((i % 4) as u32), TaskId(i));
        }
        s.consume_work(NodeId(0), 1.7);

        let mut fresh = small_state();
        for v in 0..4 {
            let node = NodeId(v);
            fresh.restore_node(node, s.node(node).tasks().to_vec(), s.node(node).height());
        }
        fresh.restore_stats(s.stat_snapshot());

        assert_eq!(fresh.height_slice(), s.height_slice());
        assert_eq!(fresh.stat_snapshot(), s.stat_snapshot());
        assert_eq!(fresh.cov().to_bits(), s.cov().to_bits());
        assert_eq!(fresh.mean_height().to_bits(), s.mean_height().to_bits());
        assert_eq!(fresh.total_tasks(), s.total_tasks());
        // Subsequent identical mutations keep the two in lockstep.
        s.add_task(NodeId(2), task(99, 0.3));
        fresh.add_task(NodeId(2), task(99, 0.3));
        assert_eq!(fresh.cov().to_bits(), s.cov().to_bits());
        assert_eq!(fresh.stat_snapshot(), s.stat_snapshot());
    }

    #[test]
    fn resident_counter_tracks_every_mutation() {
        let mut s = small_state();
        assert_eq!(s.resident_tasks(), 0);
        for i in 0..12u64 {
            s.add_task(NodeId((i % 4) as u32), task(i, 1.0));
            assert_eq!(s.resident_tasks(), s.total_tasks());
        }
        s.remove_task(NodeId(0), TaskId(0)).unwrap();
        assert_eq!(s.resident_tasks(), 11);
        // A miss changes nothing.
        assert!(s.remove_task(NodeId(0), TaskId(0)).is_none());
        assert_eq!(s.resident_tasks(), 11);
        // Consuming completes two whole unit tasks plus a partial third.
        s.consume_work(NodeId(1), 2.5);
        assert_eq!(s.resident_tasks(), 9);
        assert_eq!(s.resident_tasks(), s.total_tasks());
    }

    #[test]
    fn resident_counter_survives_restore() {
        let mut s = small_state();
        for i in 0..10u64 {
            s.add_task(NodeId((i % 4) as u32), task(i, 0.5));
        }
        s.consume_work(NodeId(2), 0.7);
        let mut fresh = small_state();
        fresh.add_task(NodeId(3), task(99, 9.0)); // pre-restore junk to displace
        for v in 0..4 {
            let node = NodeId(v);
            fresh.restore_node(node, s.node(node).tasks().to_vec(), s.node(node).height());
        }
        fresh.restore_stats(s.stat_snapshot());
        assert_eq!(fresh.resident_tasks(), s.resident_tasks());
        assert_eq!(fresh.resident_tasks(), fresh.total_tasks());
    }

    #[test]
    fn zero_work_completion_decrements_resident_counter() {
        let mut s = small_state();
        s.add_task(NodeId(1), Task::new(TaskId(0), 2.0, 1).with_work(0.0));
        assert_eq!(s.resident_tasks(), 1);
        s.consume_work(NodeId(1), 1.0);
        assert_eq!(s.resident_tasks(), 0);
    }

    #[test]
    fn task_count_slice_mirrors_every_mutation_and_restore() {
        let mut s = small_state();
        assert_eq!(s.task_count_slice(), &[0, 0, 0, 0]);
        for i in 0..9u64 {
            s.add_task(NodeId((i % 3) as u32), task(i, 1.0));
        }
        assert_eq!(s.task_count_slice(), &[3, 3, 3, 0]);
        s.remove_task(NodeId(1), TaskId(1)).unwrap();
        assert!(s.remove_task(NodeId(1), TaskId(1)).is_none()); // miss: no change
        s.consume_work(NodeId(0), 2.5); // completes 2, leaves a partial third
        assert_eq!(s.task_count_slice(), &[1, 2, 3, 0]);
        let counts: Vec<u32> = (0..4).map(|v| s.node(NodeId(v)).task_count() as u32).collect();
        assert_eq!(s.task_count_slice(), &counts[..]);

        // Restore replaces the count wholesale along with the tasks.
        let mut fresh = small_state();
        fresh.add_task(NodeId(3), task(99, 9.0)); // junk to displace
        for v in 0..4 {
            let node = NodeId(v);
            fresh.restore_node(node, s.node(node).tasks().to_vec(), s.node(node).height());
        }
        assert_eq!(fresh.task_count_slice(), s.task_count_slice());
    }

    #[test]
    fn link_table_flattened_at_construction() {
        let s = small_state();
        assert_eq!(s.links().len(), s.topo.edge_count());
        let e = s.topo.edge_index(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(s.links().get(e), LinkAttrs::default());
    }
}
