//! Simulation strategies and the per-shard wake scheduler.
//!
//! The engine can advance time two ways. [`SimulationStrategy::Tick`] is
//! the round-by-round reference: every balance round runs the full
//! pipeline (event drain, consumption sweep, fault process, decision
//! sweep), whatever the system is doing. [`SimulationStrategy::Event`]
//! keeps the identical round *grid* — one CoV sample per round, the same
//! `next_tick = time + tick` clock arithmetic — but before executing a
//! round it consults a [`WakeHeap`] of pending per-shard wakes plus the
//! event queue: when nothing can possibly happen at this round's tick
//! (no shard dirty, no event due, no work to consume, no fault process,
//! and the policy is [`quiescence_stable`]) the round is fast-forwarded
//! in closed form instead of executed. Between wakes heights are
//! constant (consumption is the only decay and it is gated on resident
//! work), so the incremental `(n, Σh, Σh²)` statistics — and therefore
//! the CoV sample — are already exact without touching a node: the
//! skip re-derives the round's metrics the same way checkpoint restore
//! re-derives state, verbatim rather than recomputed.
//!
//! Why the grid is kept: the repo's correctness story is byte-identical
//! [`RunReport`](crate::engine::RunReport)s, and the report's series
//! records one sample per round. Jumping the clock straight to the
//! global minimum wake would drop the samples in between; fast-forwarding
//! round by round costs O(1) per skipped round and reproduces the Tick
//! engine's float history bit-for-bit (see
//! `docs/adr/ADR-006-event-strategy.md` for the full argument).
//!
//! Strategies compose orthogonally with the pinned shard workers
//! ([`crate::pool::ShardPool`]): the strategy decides *whether* a round's
//! sweep runs at all, affinity decides *where* each shard of an executed
//! sweep runs, and neither choice reaches the computed bytes. A skipped
//! round never wakes the pool (the fast-forward is closed-form on the
//! calling thread), so the event strategy's skip cost stays O(1) per
//! round at every thread count.
//!
//! [`quiescence_stable`]: crate::balancer::LoadBalancer::quiescence_stable

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::str::FromStr;

/// How the engine advances simulated time between balance rounds.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimulationStrategy {
    /// Execute every balance round — the sequential reference oracle the
    /// differential suite diffs against.
    #[default]
    Tick,
    /// Skip provably effect-free rounds by consulting the wake scheduler;
    /// cost tracks activity instead of `nodes × rounds`.
    Event,
}

impl SimulationStrategy {
    /// Canonical lower-case name (`"tick"` / `"event"`), the form used by
    /// scenario JSON and the `--strategy` CLI flag.
    pub fn as_str(self) -> &'static str {
        match self {
            SimulationStrategy::Tick => "tick",
            SimulationStrategy::Event => "event",
        }
    }
}

impl fmt::Display for SimulationStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for SimulationStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tick" => Ok(SimulationStrategy::Tick),
            "event" => Ok(SimulationStrategy::Event),
            other => Err(format!("unknown simulation strategy `{other}` (tick|event)")),
        }
    }
}

/// A pending wake: shard `shard` needs evaluation no later than `time`.
/// Min-heap order — earliest time first, ties broken by shard id so the
/// pop order is a deterministic total order (the [`EventQueue`] discipline).
///
/// [`EventQueue`]: crate::events::EventQueue
#[derive(Debug, Clone, Copy)]
struct WakeEntry {
    time: f64,
    shard: usize,
}

impl PartialEq for WakeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.shard == other.shard
    }
}
impl Eq for WakeEntry {}

impl Ord for WakeEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest wake on
        // top; ties break by shard id for determinism.
        other.time.total_cmp(&self.time).then_with(|| other.shard.cmp(&self.shard))
    }
}
impl PartialOrd for WakeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The wake scheduler: at most one pending wake per shard, kept in a
/// min-heap keyed `(time, shard)` with lazy invalidation — re-arming or
/// disarming a shard leaves its old heap entry in place and records the
/// truth in a dense per-shard table; stale entries are dropped when they
/// surface at the top. A fully quiescent system has nothing armed, so the
/// heap holds no live entries and the engine's next wake falls through to
/// the event queue.
#[derive(Debug)]
pub struct WakeHeap {
    heap: BinaryHeap<WakeEntry>,
    /// `armed[s]` is shard `s`'s currently pending wake time; heap entries
    /// disagreeing with this table are stale.
    armed: Vec<Option<f64>>,
    /// Number of `Some` entries in `armed`, kept for O(1) counting.
    live: usize,
}

impl WakeHeap {
    /// A scheduler for `shards` shards, nothing armed.
    pub fn new(shards: usize) -> Self {
        WakeHeap { heap: BinaryHeap::new(), armed: vec![None; shards], live: 0 }
    }

    /// Number of shards the scheduler tracks.
    pub fn shard_count(&self) -> usize {
        self.armed.len()
    }

    /// Arms (or re-arms) shard `shard` to wake at `time`, replacing any
    /// earlier pending wake for that shard.
    ///
    /// # Panics
    /// Panics if `shard` is out of range or `time` is not finite and
    /// non-negative — wakes live on the simulation clock, which shares the
    /// event queue's time-validity rule.
    pub fn arm(&mut self, shard: usize, time: f64) {
        assert!(shard < self.armed.len(), "shard {shard} out of range");
        assert!(
            time.is_finite() && time >= 0.0,
            "wake time must be finite and non-negative, got {time}"
        );
        match self.armed[shard] {
            // Already armed at exactly this time: the live heap entry
            // stands, pushing a duplicate would only grow the heap.
            Some(t) if t == time => {}
            prev => {
                if prev.is_none() {
                    self.live += 1;
                }
                self.armed[shard] = Some(time);
                self.heap.push(WakeEntry { time, shard });
            }
        }
    }

    /// Cancels shard `shard`'s pending wake, if any (lazy: the heap entry
    /// is dropped when it surfaces).
    pub fn disarm(&mut self, shard: usize) {
        assert!(shard < self.armed.len(), "shard {shard} out of range");
        if self.armed[shard].take().is_some() {
            self.live -= 1;
        }
    }

    /// Shard `shard`'s currently pending wake time.
    pub fn armed(&self, shard: usize) -> Option<f64> {
        self.armed[shard]
    }

    /// Number of shards with a pending wake.
    pub fn armed_count(&self) -> usize {
        self.live
    }

    /// Whether no shard has a pending wake.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The earliest pending wake as `(time, shard)` without removing it.
    /// Drops stale heap entries encountered on the way, hence `&mut`.
    pub fn peek(&mut self) -> Option<(f64, usize)> {
        while let Some(top) = self.heap.peek() {
            if self.armed[top.shard] == Some(top.time) {
                return Some((top.time, top.shard));
            }
            self.heap.pop();
        }
        None
    }

    /// Removes and returns the earliest pending wake as `(time, shard)`,
    /// disarming its shard.
    pub fn pop(&mut self) -> Option<(f64, usize)> {
        while let Some(top) = self.heap.pop() {
            if self.armed[top.shard] == Some(top.time) {
                self.armed[top.shard] = None;
                self.live -= 1;
                return Some((top.time, top.shard));
            }
        }
        None
    }

    /// Drops every pending wake (checkpoint restore: wakes are re-derived
    /// from the restored dirty flags on the next round, so stale entries
    /// from the pre-restore timeline must not linger).
    pub fn clear(&mut self) {
        self.heap.clear();
        for slot in &mut self.armed {
            *slot = None;
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_default_and_names() {
        assert_eq!(SimulationStrategy::default(), SimulationStrategy::Tick);
        assert_eq!(SimulationStrategy::Tick.as_str(), "tick");
        assert_eq!(SimulationStrategy::Event.to_string(), "event");
    }

    #[test]
    fn strategy_parses_round_trip() {
        for s in [SimulationStrategy::Tick, SimulationStrategy::Event] {
            assert_eq!(s.as_str().parse::<SimulationStrategy>().unwrap(), s);
        }
        assert!("Event".parse::<SimulationStrategy>().is_err(), "names are case-sensitive");
        assert!("".parse::<SimulationStrategy>().is_err());
    }

    #[test]
    fn pops_earliest_wake_with_shard_tie_break() {
        let mut w = WakeHeap::new(4);
        w.arm(2, 5.0);
        w.arm(0, 3.0);
        w.arm(3, 3.0);
        assert_eq!(w.peek(), Some((3.0, 0)));
        assert_eq!(w.pop(), Some((3.0, 0)));
        assert_eq!(w.pop(), Some((3.0, 3)));
        assert_eq!(w.pop(), Some((5.0, 2)));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn rearm_replaces_not_duplicates() {
        let mut w = WakeHeap::new(2);
        w.arm(0, 10.0);
        w.arm(0, 4.0); // earlier re-arm wins
        assert_eq!(w.armed_count(), 1);
        assert_eq!(w.pop(), Some((4.0, 0)));
        // The stale 10.0 entry must not resurface as a duplicate wake.
        assert_eq!(w.pop(), None);

        w.arm(1, 2.0);
        w.arm(1, 8.0); // later re-arm also wins (replace, not min)
        assert_eq!(w.pop(), Some((8.0, 1)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn disarm_cancels_lazily() {
        let mut w = WakeHeap::new(3);
        w.arm(0, 1.0);
        w.arm(1, 2.0);
        w.disarm(0);
        assert_eq!(w.armed(0), None);
        assert_eq!(w.armed_count(), 1);
        assert_eq!(w.peek(), Some((2.0, 1)));
        // Disarming an unarmed shard is a no-op.
        w.disarm(2);
        assert_eq!(w.armed_count(), 1);
    }

    #[test]
    fn same_time_rearm_keeps_single_live_entry() {
        let mut w = WakeHeap::new(1);
        w.arm(0, 7.0);
        w.arm(0, 7.0);
        w.arm(0, 7.0);
        assert_eq!(w.pop(), Some((7.0, 0)));
        assert_eq!(w.pop(), None, "idempotent arms fire once");
    }

    #[test]
    fn clear_drops_everything() {
        let mut w = WakeHeap::new(3);
        w.arm(0, 1.0);
        w.arm(2, 9.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.peek(), None);
        assert_eq!(w.armed(0), None);
        assert_eq!(w.shard_count(), 3);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_wake_time() {
        WakeHeap::new(1).arm(0, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_wake_time() {
        WakeHeap::new(1).arm(0, -0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_shard() {
        WakeHeap::new(2).arm(2, 1.0);
    }
}
