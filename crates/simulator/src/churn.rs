//! Seeded node churn: a deterministic join/leave schedule over the balance
//! rounds, distinct from the link [`FaultModel`](crate::engine::FaultModel).
//!
//! A *leaving* node hands its resident tasks to its live neighbours (round-
//! robin over the up neighbours reachable across non-faulted links, in
//! ascending node order) and then goes dark: its incident links are masked,
//! it consumes no work, and loads or arrivals routed at it are redirected
//! to live nodes. A *joining* node comes back cold — empty queue, links
//! unmasked (except those the fault process holds down) — and competes for
//! load like any other processor from the next round on.
//!
//! The schedule is **precomputed**: [`ChurnPlan::markov`] draws from its
//! own seeded RNG at plan-construction time, so wiring churn into an
//! engine perturbs no engine RNG stream — the same property that keeps the
//! sharded sweep byte-identical across `(shards, threads)` layouts keeps a
//! churned run byte-identical too (see `docs/adr/ADR-010-churn-and-
//! stats.md`). Membership at any round is a pure function of the plan
//! prefix, which is how checkpoint restore re-derives it without storing
//! per-node flags.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One membership change in a [`ChurnPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Balance round the change takes effect at. The engine applies it at
    /// the top of that round's tick — before the fault process runs and
    /// before any decision is collected — so rounds ≥ 1.
    pub round: u64,
    /// The node joining or leaving.
    pub node: u32,
    /// `true` = the node leaves the system; `false` = it rejoins.
    pub leave: bool,
}

/// A validated join/leave schedule. Build with [`ChurnPlan::markov`] (the
/// seeded two-state process) or [`ChurnPlan::new`] from explicit events,
/// then hand it to [`EngineBuilder::churn`](crate::engine::EngineBuilder::churn).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnPlan {
    events: Vec<ChurnEvent>,
}

impl ChurnPlan {
    /// Wraps an explicit event list. Structural validation (ordering,
    /// membership consistency, node bounds, never emptying the system)
    /// happens in [`ChurnPlan::validate`], which the engine builder runs
    /// against its topology.
    pub fn new(events: Vec<ChurnEvent>) -> Self {
        ChurnPlan { events }
    }

    /// A seeded two-state Markov schedule over `n` nodes and `rounds`
    /// balance rounds: each round, every up node leaves with probability
    /// `leave_prob` and every down node rejoins with probability
    /// `join_prob`, drawn in ascending node order from a dedicated
    /// `StdRng::seed_from_u64(seed)` stream. A leave that would empty the
    /// system is suppressed (the draw still happens, so the stream position
    /// is independent of the suppression).
    ///
    /// # Panics
    /// Panics if `n == 0` or either probability is outside `[0, 1]`.
    pub fn markov(n: usize, rounds: u64, leave_prob: f64, join_prob: f64, seed: u64) -> Self {
        assert!(n > 0, "churn plan needs at least one node");
        for (name, p) in [("leave_prob", leave_prob), ("join_prob", join_prob)] {
            assert!((0.0..=1.0).contains(&p), "{name} = {p} must be in [0, 1]");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut down = vec![false; n];
        let mut up_count = n;
        let mut events = Vec::new();
        for round in 1..=rounds {
            for (node, is_down) in down.iter_mut().enumerate() {
                if *is_down {
                    if rng.gen_bool(join_prob) {
                        *is_down = false;
                        up_count += 1;
                        events.push(ChurnEvent { round, node: node as u32, leave: false });
                    }
                } else if rng.gen_bool(leave_prob) && up_count > 1 {
                    *is_down = true;
                    up_count -= 1;
                    events.push(ChurnEvent { round, node: node as u32, leave: true });
                }
            }
        }
        ChurnPlan { events }
    }

    /// The schedule, sorted by `(round, node)`.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Consumes the plan into its event list (engine-builder plumbing).
    pub fn into_events(self) -> Vec<ChurnEvent> {
        self.events
    }

    /// Whether the plan schedules no changes at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled membership changes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Checks the plan against an `n`-node system: events are ordered by
    /// `(round, node)` (strictly — one change per node per round), rounds
    /// start at 1, nodes are in bounds, every leave targets an up node and
    /// every join a down one, and no leave ever empties the system.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        let mut down = vec![false; n];
        let mut up_count = n;
        let mut prev: Option<(u64, u32)> = None;
        for ev in &self.events {
            if ev.round == 0 {
                return Err(format!(
                    "churn event for node {} at round 0 (rounds start at 1)",
                    ev.node
                ));
            }
            if ev.node as usize >= n {
                return Err(format!("churn event names node {} of {n}", ev.node));
            }
            if let Some((pr, pn)) = prev {
                if (ev.round, ev.node) <= (pr, pn) {
                    return Err(format!(
                        "churn events out of order: ({pr}, node {pn}) then ({}, node {})",
                        ev.round, ev.node
                    ));
                }
            }
            prev = Some((ev.round, ev.node));
            let flag = &mut down[ev.node as usize];
            if ev.leave {
                if *flag {
                    return Err(format!(
                        "node {} leaves at round {} but is already down",
                        ev.node, ev.round
                    ));
                }
                if up_count == 1 {
                    return Err(format!(
                        "leave of node {} at round {} empties the system",
                        ev.node, ev.round
                    ));
                }
                *flag = true;
                up_count -= 1;
            } else {
                if !*flag {
                    return Err(format!(
                        "node {} joins at round {} but is already up",
                        ev.node, ev.round
                    ));
                }
                *flag = false;
                up_count += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markov_is_deterministic_and_valid() {
        let a = ChurnPlan::markov(16, 40, 0.05, 0.3, 9);
        let b = ChurnPlan::markov(16, 40, 0.05, 0.3, 9);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "p=0.05 over 16×40 draws should schedule something");
        a.validate(16).expect("markov plans are valid by construction");
        // A different seed reshuffles the schedule.
        let c = ChurnPlan::markov(16, 40, 0.05, 0.3, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn markov_never_empties_the_system() {
        // Certain leave, impossible rejoin: everyone who can leave does,
        // but one node must always survive.
        let plan = ChurnPlan::markov(4, 10, 1.0, 0.0, 0);
        plan.validate(4).expect("valid");
        let leaves = plan.events().iter().filter(|e| e.leave).count();
        assert_eq!(leaves, 3, "exactly n−1 leaves fire, the survivor's are suppressed");
    }

    #[test]
    fn zero_probability_plan_is_empty() {
        assert!(ChurnPlan::markov(8, 100, 0.0, 0.0, 5).is_empty());
    }

    #[test]
    fn validate_rejects_inconsistent_schedules() {
        let ev = |round, node, leave| ChurnEvent { round, node, leave };
        // Round 0.
        assert!(ChurnPlan::new(vec![ev(0, 1, true)]).validate(4).unwrap_err().contains("round 0"));
        // Node out of bounds.
        assert!(ChurnPlan::new(vec![ev(1, 9, true)]).validate(4).unwrap_err().contains("node 9"));
        // Out of order.
        assert!(ChurnPlan::new(vec![ev(2, 1, true), ev(1, 0, true)])
            .validate(4)
            .unwrap_err()
            .contains("out of order"));
        // Duplicate (round, node).
        assert!(ChurnPlan::new(vec![ev(1, 1, true), ev(1, 1, false)])
            .validate(4)
            .unwrap_err()
            .contains("out of order"));
        // Double leave.
        assert!(ChurnPlan::new(vec![ev(1, 1, true), ev(2, 1, true)])
            .validate(4)
            .unwrap_err()
            .contains("already down"));
        // Join of an up node.
        assert!(ChurnPlan::new(vec![ev(1, 1, false)])
            .validate(4)
            .unwrap_err()
            .contains("already up"));
        // Emptying the system.
        assert!(ChurnPlan::new(vec![ev(1, 0, true), ev(1, 1, true)])
            .validate(2)
            .unwrap_err()
            .contains("empties"));
        // A legal mixed schedule passes.
        ChurnPlan::new(vec![ev(1, 0, true), ev(3, 0, false), ev(3, 2, true)])
            .validate(4)
            .expect("valid schedule");
    }
}
