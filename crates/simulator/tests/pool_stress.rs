//! Stress suite for the pinned-shard-worker sweep: byte-identical
//! `RunReport`s across the full `threads × shards` matrix, checkpoint
//! crossings that change the execution layout mid-run, panic-in-one-shard
//! recovery, and a rapid-fire barrier hammer.
//!
//! Most tests here run through the public engine API — the pool's own
//! unit tests cover the barrier/affinity mechanics in isolation; these
//! tests prove the property that matters upstream: *execution layout is
//! unobservable in the output bytes.* Two raw-pool storms at the bottom
//! hammer the lock-free epoch barrier directly (spin→park→wake cycling and
//! the panic re-raise) across the same worker × shard matrix.

use pp_sim::prelude::*;
use pp_tasking::workload::{ArrivalProcess, Workload};
use pp_topology::graph::Topology;
use rand::rngs::StdRng;
use rand::Rng;

/// Moves one task toward the lowest neighbour, but draws from the node's
/// RNG stream on *every* decision — never quiescence-stable, so every
/// shard is evaluated every round and the barrier fires at full width.
struct NoisyGreedy;

impl LoadBalancer for NoisyGreedy {
    fn name(&self) -> &str {
        "noisy-greedy"
    }

    fn decide(&self, view: &NodeView<'_>, rng: &mut StdRng) -> Vec<MigrationIntent> {
        // The draw happens unconditionally: per-node streams make the
        // outcome layout-independent, the non-stability makes it dense.
        let threshold = 1.0 + rng.gen_range(0.0..0.25);
        let Some(task) = view.tasks.first() else { return Vec::new() };
        let Some(lowest) = view.neighbors.iter().min_by(|a, b| a.height.total_cmp(&b.height))
        else {
            return Vec::new();
        };
        if view.height - lowest.height > threshold {
            vec![MigrationIntent { task: task.id, to: lowest.id, flag: 0.0, heat: 0.0 }]
        } else {
            Vec::new()
        }
    }
}

/// The deterministic quiescence-stable variant: exercises the mixed
/// evaluated/skipped sweep where some of a worker's owned shards are
/// clean and cost only a flag read.
struct LazyGreedy;

impl LoadBalancer for LazyGreedy {
    fn name(&self) -> &str {
        "lazy-greedy"
    }

    fn decide(&self, view: &NodeView<'_>, _rng: &mut StdRng) -> Vec<MigrationIntent> {
        let Some(task) = view.tasks.first() else { return Vec::new() };
        let Some(lowest) = view.neighbors.iter().min_by(|a, b| a.height.total_cmp(&b.height))
        else {
            return Vec::new();
        };
        if view.height - lowest.height > 1.0 {
            vec![MigrationIntent { task: task.id, to: lowest.id, flag: 0.0, heat: 0.0 }]
        } else {
            Vec::new()
        }
    }

    fn quiescence_stable(&self) -> bool {
        true
    }
}

/// 64-node torus with the full event mix — faults, Poisson arrivals,
/// consumption — so dirty-marking, halo adjacency and the commit phase
/// all stay busy while the layout varies.
fn busy_engine(balancer: impl LoadBalancer + 'static, shards: usize, threads: usize) -> Engine {
    let topo = Topology::torus(&[8, 8]);
    let w = Workload::uniform_random(64, 6.0, 3);
    EngineBuilder::new(topo)
        .workload(w)
        .balancer(balancer)
        .config(EngineConfig {
            shards,
            threads,
            consume_rate: 0.2,
            fault_model: Some(FaultModel { p_down: 0.05, p_up: 0.5 }),
            arrival: ArrivalProcess::Poisson { rate: 2.0, size_min: 0.5, size_max: 1.5 },
            ..Default::default()
        })
        .seed(17)
        .build()
}

const THREADS: &[usize] = &[1, 2, 4, 8];
const SHARDS: &[usize] = &[1, 4, 64];

#[test]
fn dense_reports_identical_across_thread_and_shard_matrix() {
    let reference = {
        let mut e = busy_engine(NoisyGreedy, 1, 1);
        e.run_rounds(30).drain(25.0);
        e.report()
    };
    for &k in SHARDS {
        for &t in THREADS {
            let mut e = busy_engine(NoisyGreedy, k, t);
            e.run_rounds(30).drain(25.0);
            assert_eq!(e.report(), reference, "K={k} threads={t} diverged");
        }
    }
}

#[test]
fn skip_capable_reports_identical_across_thread_and_shard_matrix() {
    let reference = {
        let mut e = busy_engine(LazyGreedy, 1, 1);
        e.run_rounds(30).drain(25.0);
        e.report()
    };
    for &k in SHARDS {
        for &t in THREADS {
            let mut e = busy_engine(LazyGreedy, k, t);
            e.run_rounds(30).drain(25.0);
            assert_eq!(e.report(), reference, "K={k} threads={t} diverged");
        }
    }
}

#[test]
fn checkpoint_crosses_thread_counts_exactly() {
    // Write under a multi-threaded layout, resume under every thread
    // count (and back): worker affinity is execution layout, not state,
    // so the continuation must not know where it was captured.
    let mut straight = busy_engine(NoisyGreedy, 4, 1);
    straight.run_rounds(24);
    straight.drain(25.0);
    let want = straight.report();

    let mut writer = busy_engine(NoisyGreedy, 64, 8);
    writer.run_rounds(9);
    let cp = Checkpoint::from_json(&writer.checkpoint().to_json()).expect("round trip");
    for &k in SHARDS {
        for &t in THREADS {
            let mut resumed = busy_engine(NoisyGreedy, k, t);
            resumed.restore(&cp).expect("restore");
            resumed.run_rounds(15);
            resumed.drain(25.0);
            assert_eq!(resumed.report(), want, "resume under K={k} threads={t} diverged");
        }
    }
}

#[test]
fn layout_changes_mid_run_through_chained_checkpoints() {
    // The layout changes twice mid-run — (1,1) → (64,8) → (4,2) — with
    // the state carried through serialized checkpoints each time. The
    // final bytes must match a run that never changed anything.
    let mut straight = busy_engine(NoisyGreedy, 16, 4);
    straight.run_rounds(30);
    straight.drain(25.0);
    let want = straight.report();

    let mut a = busy_engine(NoisyGreedy, 1, 1);
    a.run_rounds(10);
    let cp = Checkpoint::from_json(&a.checkpoint().to_json()).expect("round trip");
    let mut b = busy_engine(NoisyGreedy, 64, 8);
    b.restore(&cp).expect("restore into (64,8)");
    b.run_rounds(10);
    let cp = Checkpoint::from_json(&b.checkpoint().to_json()).expect("round trip");
    let mut c = busy_engine(NoisyGreedy, 4, 2);
    c.restore(&cp).expect("restore into (4,2)");
    c.run_rounds(10);
    c.drain(25.0);
    assert_eq!(c.report(), want, "chained layout changes diverged");
}

/// Panics on exactly one node in exactly one round, then behaves like
/// [`LazyGreedy`] — so the panic hits one shard of one parallel sweep.
struct PanicOnce;

impl LoadBalancer for PanicOnce {
    fn name(&self) -> &str {
        "panic-once"
    }

    fn decide(&self, view: &NodeView<'_>, rng: &mut StdRng) -> Vec<MigrationIntent> {
        if view.round == 5 && view.node.0 == 13 {
            panic!("injected decide failure");
        }
        LazyGreedy.decide(view, rng)
    }
}

#[test]
fn panic_in_one_shard_names_it_and_leaves_the_engine_usable() {
    // 8 shards over 64 nodes → node 13 lives in shard 1. Threads = 4 so
    // the sweep runs on the pool; the other workers' shards must complete
    // (the barrier ack survives the unwind) and the panic must name the
    // failing shard, not hang or abort the process.
    let mut e = busy_engine(PanicOnce, 8, 4);
    e.run_rounds(4);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        e.run_rounds(1);
    }));
    let msg = *caught.expect_err("round 5 must panic").downcast::<String>().expect("message");
    assert!(msg.contains("[1]"), "panic names the owning shard: {msg}");
    // The pool (and its barrier) survives: later rounds run to completion
    // on the same workers. (Round 5's sweep was torn, so the *numbers*
    // are off the reference trajectory — the property under test is that
    // the machinery neither hangs nor compounds the failure.)
    e.run_rounds(10);
    e.drain(25.0);
    let r = e.report();
    assert_eq!(r.rounds, 15);
    assert!(r.time > 0.0);
}

#[test]
fn barrier_hammer_rapid_rounds_stay_exact() {
    // Hundreds of tiny rounds at maximum worker count and shard count:
    // thousands of barrier crossings with near-empty shard work, where a
    // lost wake or a stale epoch would deadlock or misorder. Identity
    // against the sequential reference proves neither happened.
    let run = |k: usize, t: usize| {
        let topo = Topology::torus(&[8, 8]);
        let w = Workload::uniform_random(64, 6.0, 7);
        let mut e = EngineBuilder::new(topo)
            .workload(w)
            .balancer(NoisyGreedy)
            .config(EngineConfig { shards: k, threads: t, ..Default::default() })
            .seed(23)
            .build();
        e.run_rounds(400).drain(25.0);
        e.report()
    };
    let reference = run(1, 1);
    assert_eq!(run(64, 8), reference, "hammer (64,8) diverged");
    assert_eq!(run(64, 3), reference, "hammer (64,3) diverged");
}

#[test]
fn raw_barrier_hammer_spin_park_storm_across_layouts() {
    // The raw pool under the lock-free epoch barrier: 400 rounds per
    // (workers, shards) shape across the full matrix, with idle gaps long
    // past the spin limit injected mid-storm so workers fall from the spin
    // loop into a real park and must be woken by the next epoch publish.
    // Each round chains a shard-and-round-dependent update into its slot,
    // so a round that ran twice, not at all, or against a stale epoch
    // breaks the final chained values.
    use pp_sim::pool::ShardPool;
    for &w in THREADS {
        for &k in SHARDS {
            let pool = ShardPool::new(w, k);
            let mut slots = vec![0u64; k];
            let mut expect = vec![0u64; k];
            for round in 0..400u64 {
                pool.run_shards(&mut slots, &|s: usize, slot: &mut u64| {
                    *slot = slot.wrapping_mul(31).wrapping_add(round ^ s as u64);
                });
                for (s, e) in expect.iter_mut().enumerate() {
                    *e = e.wrapping_mul(31).wrapping_add(round ^ s as u64);
                }
                if round % 133 == 0 {
                    // Longer than any reasonable spin window: every worker
                    // parks, and the next round's wake path is exercised.
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            assert_eq!(slots, expect, "workers={w} K={k}: storm diverged");
        }
    }
}

#[test]
fn raw_pool_panic_re_raises_naming_shards_and_stays_usable() {
    // Two shards of one round panic; the caller's re-raise must name both
    // in sorted order, the sibling shards must still have completed their
    // work, and the same pool (same parked workers, same barrier) must run
    // later rounds normally.
    use pp_sim::pool::ShardPool;
    let pool = ShardPool::new(4, 64);
    let mut slots = vec![0u32; 64];
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.run_shards(&mut slots, &|s: usize, slot: &mut u32| {
            if s == 7 || s == 42 {
                panic!("injected shard failure");
            }
            *slot = 100 + s as u32;
        });
    }));
    let msg = *caught.expect_err("must re-raise").downcast::<String>().expect("message");
    assert!(msg.contains("[7, 42]"), "panic names the failing shards: {msg}");
    for (s, &v) in slots.iter().enumerate() {
        if s != 7 && s != 42 {
            assert_eq!(v, 100 + s as u32, "sibling shard {s} must have completed");
        }
    }
    pool.run_shards(&mut slots, &|s: usize, slot: &mut u32| *slot = s as u32 + 1);
    assert!(
        slots.iter().enumerate().all(|(s, &v)| v == s as u32 + 1),
        "pool must stay usable after an unwound round"
    );
}

#[test]
fn executed_rounds_counts_swept_rounds_only() {
    // A quiescence-stable policy on a system that settles: once every
    // shard is clean, rounds stop executing sweeps and the counter stops
    // advancing, at every layout.
    for &(k, t) in &[(1usize, 1usize), (8, 4)] {
        let topo = Topology::ring(8);
        let w = Workload::hotspot(8, 0, 8.0);
        let mut e = EngineBuilder::new(topo)
            .workload(w)
            .balancer(LazyGreedy)
            .config(EngineConfig { shards: k, threads: t, ..Default::default() })
            .seed(1)
            .build();
        e.run_rounds(50);
        let executed = e.executed_rounds();
        assert!(executed > 0, "K={k}: the hotspot must execute early rounds");
        e.run_rounds(10);
        if k > 1 {
            // Shard-level activity tracking has resolution at K ≥ 2: a
            // settled system stops executing sweeps, and the quiescent
            // tail adds none.
            assert!(
                executed < 50,
                "K={k}: a settled system must stop executing sweeps (got {executed})"
            );
            assert_eq!(e.executed_rounds(), executed, "K={k} t={t}: quiescent tail swept");
        } else {
            // The K = 1 reference pipeline never skips — every round's
            // sweep executes, including the tail's.
            assert_eq!(e.executed_rounds(), 60, "K=1 executes every round");
        }
    }
}
