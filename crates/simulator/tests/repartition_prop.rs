//! Property suite for adaptive online repartitioning (ADR-008), in two
//! layers:
//!
//! 1. **Policy properties** — for arbitrary load vectors,
//!    [`RepartitionPolicy`] must always produce a well-formed layout
//!    (exact cover of `0..n`, contiguous, no empty shard), must be a pure
//!    function of its inputs, and must never propose a layout that is
//!    worse-skewed than the one it replaces under the very weights it cut
//!    on.
//! 2. **Engine properties** — a mid-run repartition must be invisible in
//!    the report bytes: across execution layouts, across the tick/event
//!    strategies, and across a checkpoint/resume chain that interleaves
//!    with the repartition schedule.

use pp_sim::prelude::*;
use pp_tasking::workload::{ArrivalProcess, Workload};
use pp_topology::graph::Topology;
use pp_topology::partition::{Partition, RepartitionPolicy};
use proptest::prelude::*;
use rand::rngs::StdRng;

/// Quiescence-stable greedy diffusion: moves one task toward the lowest
/// neighbour past a unit height gap. Deterministic per node view, so
/// shard-level skipping is live — exactly the regime repartitioning
/// optimizes — while staying independent of the policy crates.
struct GreedyDiffusion;

impl LoadBalancer for GreedyDiffusion {
    fn name(&self) -> &str {
        "greedy-diffusion"
    }

    fn decide(&self, view: &NodeView<'_>, _rng: &mut StdRng) -> Vec<MigrationIntent> {
        let Some(task) = view.tasks.first() else { return Vec::new() };
        let Some(lowest) = view.neighbors.iter().min_by(|a, b| a.height.total_cmp(&b.height))
        else {
            return Vec::new();
        };
        if view.height - lowest.height > 1.0 {
            vec![MigrationIntent { task: task.id, to: lowest.id, flag: 0.0, heat: 0.0 }]
        } else {
            Vec::new()
        }
    }

    fn quiescence_stable(&self) -> bool {
        true
    }
}

/// Checks the structural invariants every proposed layout must satisfy:
/// starts at 0, ends at `n`, gap-free, and (for `n > 0`) no empty shard.
fn assert_well_formed(ranges: &[(u32, u32)], n: usize, k: usize) {
    assert_eq!(ranges.len(), k);
    assert_eq!(ranges[0].0, 0);
    assert_eq!(ranges[ranges.len() - 1].1 as usize, n);
    for (s, &(lo, hi)) in ranges.iter().enumerate() {
        assert!(lo < hi || n == 0, "shard {s} empty in {ranges:?}");
        if s > 0 {
            assert_eq!(ranges[s - 1].1, lo, "gap before shard {s}");
        }
    }
}

/// The per-node weight vector `rebalance` cuts on, reconstructed the
/// straightforward O(n) way: each shard's load spread uniformly over its
/// nodes, blended 50/50 with uniform mass (see the policy docs).
fn blended_weights(old: &Partition, loads: &[f64]) -> Vec<f64> {
    let n: usize = (0..old.shard_count()).map(|s| old.len(s)).sum();
    let clean = |l: f64| if l.is_finite() && l > 0.0 { l } else { 0.0 };
    let total: f64 = loads.iter().map(|&l| clean(l)).sum();
    let floor = total / n as f64;
    let mut w = vec![0.0f64; n];
    for (s, &load) in loads.iter().enumerate().take(old.shard_count()) {
        let (lo, hi) = old.range(s);
        let per_node = clean(load) / (hi - lo) as f64;
        for x in &mut w[lo as usize..hi as usize] {
            *x = per_node + floor;
        }
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `split_weights` on arbitrary weights (including zero, negative and
    /// non-finite entries, which count as zero) always exactly covers
    /// `0..n` with `k` contiguous non-empty intervals, and twice the same
    /// input gives twice the same cut.
    #[test]
    fn split_weights_is_a_well_formed_pure_cut(
        weights in prop::collection::vec(-1.0f64..50.0, 1..=160),
        k in 1usize..=12,
    ) {
        let n = weights.len();
        let k = k.min(n);
        let a = RepartitionPolicy::split_weights(&weights, k);
        assert_well_formed(&a, n, k);
        let b = RepartitionPolicy::split_weights(&weights, k);
        prop_assert_eq!(a, b, "cut must be deterministic");
    }

    /// `rebalance` on arbitrary per-shard loads either declines or
    /// proposes a well-formed layout that (a) differs from the incumbent,
    /// (b) is reproducible, and (c) strictly improves the max/mean skew
    /// under the blended weights it cut on — the "never worse" guarantee
    /// the engine's fire path relies on.
    #[test]
    fn rebalance_never_proposes_a_worse_layout(
        n in 8usize..=96,
        k in 2usize..=8,
        seed_loads in prop::collection::vec(0.0f64..100.0, 8),
    ) {
        let topo = Topology::ring(n);
        let k = k.min(n);
        let old = Partition::new(&topo, k);
        let loads: Vec<f64> = (0..k).map(|s| seed_loads[s % seed_loads.len()]).collect();
        let Some(candidate) = RepartitionPolicy::rebalance(&old, &loads) else { return };
        assert_well_formed(&candidate, n, k);
        prop_assert_ne!(&candidate[..], old.ranges(), "a proposal must change the layout");
        prop_assert_eq!(
            Some(&candidate[..]),
            RepartitionPolicy::rebalance(&old, &loads).as_deref(),
            "rebalance must be deterministic"
        );
        let w = blended_weights(&old, &loads);
        let old_skew = RepartitionPolicy::range_skew(old.ranges(), &w);
        let new_skew = RepartitionPolicy::range_skew(&candidate, &w);
        // The policy compares piecewise-aggregated masses; summing the
        // expanded per-node weights associates differently, so allow
        // float-association slack on top of the 10% hysteresis margin.
        prop_assert!(
            new_skew <= old_skew * 0.9 * (1.0 + 1e-9) + 1e-9,
            "proposal skew {} vs incumbent {} (loads {:?})",
            new_skew, old_skew, loads
        );
    }
}

/// A 16×16 torus under a drifting hotspot — small enough for a prop-style
/// matrix sweep, busy enough that the adaptive knob actually fires.
fn hotspot_engine(
    shards: usize,
    threads: usize,
    strategy: SimulationStrategy,
    repartition: Option<RepartitionConfig>,
) -> Engine {
    let topo = Topology::torus(&[16, 16]);
    let n = topo.node_count();
    EngineBuilder::new(topo)
        .workload(Workload::from_loads(&vec![0.0; n], 1.0))
        .balancer(GreedyDiffusion)
        .config(EngineConfig {
            shards,
            threads,
            consume_rate: 0.0,
            arrival: ArrivalProcess::MovingHotspot { rate: 2.0, size: 1.0, dwell: 6.0, stride: 17 },
            repartition,
            strategy,
            ..Default::default()
        })
        .seed(99)
        .build()
}

const ADAPTIVE: Option<RepartitionConfig> =
    Some(RepartitionConfig { every: 2, skew_threshold: 1.2 });

#[test]
fn adaptive_reports_match_static_across_layouts_and_strategies() {
    for strategy in [SimulationStrategy::Tick, SimulationStrategy::Event] {
        let want = {
            let mut e = hotspot_engine(1, 1, strategy, None);
            e.run_rounds(60);
            e.report()
        };
        let mut fired_somewhere = false;
        for (k, t) in [(4usize, 1usize), (8, 2), (16, 4)] {
            let mut e = hotspot_engine(k, t, strategy, ADAPTIVE);
            e.run_rounds(60);
            fired_somewhere |= e.repartitions() > 0;
            assert_eq!(e.report(), want, "adaptive K={k} T={t} {strategy:?} diverged");
        }
        assert!(fired_somewhere, "{strategy:?}: the adaptive knob never fired");
    }
}

#[test]
fn checkpoint_resume_interleaves_with_repartitions_exactly() {
    // The run crosses a checkpoint boundary twice, each leg far enough to
    // repartition again after the restore, and the resumed engines change
    // both strategy and execution layout. Every chain must land on the
    // straight-through bytes.
    for strategy in [SimulationStrategy::Tick, SimulationStrategy::Event] {
        let want = {
            let mut e = hotspot_engine(8, 1, strategy, ADAPTIVE);
            e.run_rounds(60);
            assert!(e.repartitions() > 0, "straight run must repartition");
            e.report()
        };
        let mut a = hotspot_engine(8, 2, strategy, ADAPTIVE);
        a.run_rounds(25);
        let cp = Checkpoint::from_json(&a.checkpoint().to_json()).expect("round trip");
        let other = match strategy {
            SimulationStrategy::Tick => SimulationStrategy::Event,
            SimulationStrategy::Event => SimulationStrategy::Tick,
        };
        let mut b = hotspot_engine(8, 4, other, ADAPTIVE);
        b.restore(&cp).expect("restore leg 1");
        b.run_rounds(20);
        let cp = Checkpoint::from_json(&b.checkpoint().to_json()).expect("round trip");
        let mut c = hotspot_engine(8, 1, strategy, ADAPTIVE);
        c.restore(&cp).expect("restore leg 2");
        c.run_rounds(15);
        assert_eq!(c.report(), want, "{strategy:?}: chained resume diverged");
    }
}
