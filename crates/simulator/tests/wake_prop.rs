//! Property tests for the event strategy's wake scheduler.
//!
//! The [`WakeHeap`] uses lazy invalidation: `disarm` and re-`arm` leave
//! stale entries in the binary heap that `peek`/`pop` must drop. These
//! tests drive it against a naive model — a plain `Vec<Option<f64>>` of
//! armed times — under arbitrary arm/disarm/pop interleavings, checking
//! that no wake is ever lost, duplicated, or reordered:
//!
//! * `pop` always returns the model's true minimum `(time, shard)`;
//! * observed pop times never go backwards when arm times only grow
//!   (the engine's usage: wakes are armed at or after the current tick);
//! * a fully quiescent engine's `next_wake()` is exactly the event
//!   queue's next entry time — the closed-form skip's wake condition.

use pp_sim::prelude::*;
use pp_tasking::workload::{TraceEvent, Workload};
use pp_topology::graph::Topology;
use proptest::prelude::*;

const SHARDS: usize = 5;

/// The naive reference: armed wake time per shard, scanned linearly.
/// Ties break toward the lower shard id, exactly like the heap's ordering.
fn model_min(model: &[Option<f64>]) -> Option<(f64, usize)> {
    model
        .iter()
        .enumerate()
        .filter_map(|(s, t)| t.map(|t| (t, s)))
        .min_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Ops are (selector, shard, time) triples: selector % 3 == 0 → arm,
    /// 1 → disarm, 2 → pop (and compare against the model's minimum).
    #[test]
    fn heap_matches_naive_model_under_arbitrary_interleavings(
        ops in prop::collection::vec((0u8..3, 0usize..SHARDS, 0.0f64..100.0), 1..=200),
    ) {
        let mut heap = WakeHeap::new(SHARDS);
        let mut model: Vec<Option<f64>> = vec![None; SHARDS];
        for (sel, shard, time) in ops {
            match sel {
                0 => {
                    heap.arm(shard, time);
                    model[shard] = Some(time);
                }
                1 => {
                    heap.disarm(shard);
                    model[shard] = None;
                }
                _ => {
                    let want = model_min(&model);
                    prop_assert_eq!(heap.pop(), want, "pop disagrees with model");
                    if let Some((_, s)) = want {
                        model[s] = None;
                    }
                }
            }
            // Invariants that must hold after *every* op, not just pops.
            prop_assert_eq!(
                heap.armed_count(),
                model.iter().filter(|t| t.is_some()).count(),
                "live count diverged"
            );
            for (s, &armed) in model.iter().enumerate() {
                prop_assert_eq!(heap.armed(s), armed, "armed({}) diverged", s);
            }
        }
        // Draining the heap at the end yields the model's remaining wakes
        // in exact (time, shard) order — nothing lost, nothing duplicated.
        let mut rest = Vec::new();
        while let Some(w) = heap.pop() {
            rest.push(w);
        }
        let mut want: Vec<(f64, usize)> =
            model.iter().enumerate().filter_map(|(s, t)| t.map(|t| (t, s))).collect();
        want.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        prop_assert_eq!(rest, want, "drain order diverged from model");
    }

    /// The engine's usage pattern: re-arms only ever move a shard's wake
    /// forward (to the upcoming tick). Under that discipline the sequence
    /// of popped times is monotone non-decreasing — time never runs
    /// backwards for the event loop.
    #[test]
    fn pops_are_monotone_when_arm_times_only_grow(
        steps in prop::collection::vec((0usize..SHARDS, 0.0f64..10.0, 0u8..2), 1..=100),
    ) {
        let mut heap = WakeHeap::new(SHARDS);
        let mut clock = 0.0f64;
        let mut last_pop = f64::NEG_INFINITY;
        for (shard, dt, do_pop) in steps {
            clock += dt;
            heap.arm(shard, clock);
            if do_pop == 1 {
                if let Some((t, _)) = heap.pop() {
                    prop_assert!(
                        t >= last_pop,
                        "wake time went backwards: {} after {}", t, last_pop
                    );
                    last_pop = t;
                }
            }
        }
    }

    /// Same-time re-arms are idempotent: hammering one shard with its
    /// current wake time must not grow the heap's internal storage beyond
    /// one live entry (the leak the lazy scheme could otherwise hide).
    #[test]
    fn same_time_rearm_storm_stays_bounded(
        shard in 0usize..SHARDS,
        time in 0.0f64..50.0,
        repeats in 1usize..500,
    ) {
        let mut heap = WakeHeap::new(SHARDS);
        for _ in 0..repeats {
            heap.arm(shard, time);
        }
        prop_assert_eq!(heap.armed_count(), 1);
        prop_assert_eq!(heap.pop(), Some((time, shard)));
        prop_assert_eq!(heap.pop(), None);
    }
}

/// A quiescent system's next wake is the event queue's next entry, exactly:
/// build a null-balanced engine whose only future is a recorded arrival
/// trace, run it clean, and compare `next_wake()` to the known times.
#[test]
fn quiescent_next_wake_equals_queue_time_exactly() {
    let trace = vec![
        TraceEvent { time: 5.25, node: 2, size: 1.0 },
        TraceEvent { time: 11.75, node: 6, size: 2.0 },
    ];
    let mut engine = EngineBuilder::new(Topology::ring(8))
        .workload(Workload::from_loads(&[0.0; 8], 1.0))
        .balancer(NullBalancer)
        .config(EngineConfig {
            strategy: SimulationStrategy::Event,
            consume_rate: 1.0,
            ..Default::default()
        })
        .arrival_trace(trace)
        .seed(3)
        .build();
    // Round 1 sweeps the initially-dirty shards; afterwards the system is
    // clean and the only pending wakes are the two trace arrivals.
    engine.run_rounds(2);
    assert_eq!(engine.next_wake(), Some(5.25));
    engine.run_rounds(4);
    assert_eq!(engine.round(), 6);
    // First arrival landed (round 6 covers (5, 6]); its work drains, then
    // the second arrival is the only future.
    engine.run_rounds(3);
    assert_eq!(engine.next_wake(), Some(11.75));
    engine.run_rounds(40);
    assert_eq!(engine.next_wake(), None, "fully drained system has no future");
}
