//! Property test: the incrementally maintained height cache and imbalance
//! sufficient statistics (`Σh`, `Σh²`) must agree with a from-scratch
//! recompute after *any* interleaving of task adds, removals (migrations),
//! and work consumption.

use pp_metrics::imbalance::Imbalance;
use pp_sim::state::SystemState;
use pp_tasking::graph::TaskGraph;
use pp_tasking::resources::ResourceMatrix;
use pp_tasking::task::{Task, TaskId};
use pp_topology::graph::{NodeId, Topology};
use pp_topology::links::{LinkAttrs, LinkMap};
use proptest::prelude::*;

const NODES: usize = 6;

fn fresh_state() -> SystemState {
    let topo = Topology::ring(NODES);
    let links = LinkMap::uniform(&topo, LinkAttrs::default());
    SystemState::new(topo, links, TaskGraph::new(), ResourceMatrix::none())
}

/// From-scratch recompute of every statistic the state maintains
/// incrementally: per-node height = Σ resident task sizes.
fn check_against_scratch(s: &SystemState) -> Result<(), String> {
    for i in 0..NODES {
        let node = s.node(NodeId(i as u32));
        let expect: f64 = node.tasks().iter().map(|t| t.size).sum();
        let cached = s.height_slice()[i];
        if (cached - node.height()).abs() > 1e-9 {
            return Err(format!("cache {cached} != node height {}", node.height()));
        }
        if (cached - expect).abs() > 1e-6 {
            return Err(format!("node {i}: cached {cached} vs recomputed {expect}"));
        }
    }
    let expect = Imbalance::of(s.height_slice());
    if (s.cov() - expect.cov).abs() > 1e-6 * (1.0 + expect.cov) {
        return Err(format!("cov {} vs recomputed {}", s.cov(), expect.cov));
    }
    if (s.mean_height() - expect.mean).abs() > 1e-6 * (1.0 + expect.mean.abs()) {
        return Err(format!("mean {} vs recomputed {}", s.mean_height(), expect.mean));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ops are encoded as (selector, node, size) triples:
    /// selector % 3 == 0 → add a task; 1 → migrate the front task of `node`
    /// to the next node (remove + add, what the engine's launch/arrival
    /// path does); 2 → consume work on `node`.
    #[test]
    fn incremental_stats_match_recompute(
        ops in prop::collection::vec((0u8..3, 0usize..NODES, 0.1f64..4.0), 1..=120),
    ) {
        let mut s = fresh_state();
        let mut next_id = 0u64;
        for (sel, node, size) in ops {
            let v = NodeId(node as u32);
            match sel {
                0 => {
                    s.add_task(v, Task::new(TaskId(next_id), size, v.0));
                    next_id += 1;
                }
                1 => {
                    let front = s.node(v).tasks().first().map(|t| t.id);
                    if let Some(id) = front {
                        let task = s.remove_task(v, id).expect("front task is resident");
                        let dest = NodeId(((node + 1) % NODES) as u32);
                        s.add_task(dest, task);
                    }
                }
                _ => {
                    s.consume_work(v, size);
                }
            }
            // The invariant holds after *every* mutation, not just at the end.
            if let Err(e) = check_against_scratch(&s) {
                prop_assert!(false, "{e}");
            }
        }
    }

    /// Long consume-heavy sequences drive heights to zero and back; the
    /// sufficient statistics must never drift into a negative variance (the
    /// `cov` clamp) or a stale cache.
    #[test]
    fn repeated_fill_and_drain_does_not_drift(
        rounds in 1usize..20,
        size in 0.5f64..3.0,
    ) {
        let mut s = fresh_state();
        let mut id = 0u64;
        for _ in 0..rounds {
            for i in 0..NODES {
                s.add_task(NodeId(i as u32), Task::new(TaskId(id), size, i as u32));
                id += 1;
            }
            for i in 0..NODES {
                s.consume_work(NodeId(i as u32), size * 2.0);
            }
        }
        if let Err(e) = check_against_scratch(&s) {
            prop_assert!(false, "{e}");
        }
        // Everything consumed: flat surface, zero CoV.
        prop_assert!(s.cov().abs() < 1e-9, "cov {}", s.cov());
    }
}
