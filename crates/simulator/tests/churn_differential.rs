//! Churn differential gate: a run with node churn must be byte-identical
//! across the tick strategy, the event strategy, and a checkpoint/resume
//! split — for every `(shards, threads)` execution layout, including the
//! K = 64 one-node-per-shard extreme. This is the engine-level guarantee
//! the statistical comparison harness leans on: a churn scenario's metrics
//! are a function of `(spec, seed)` alone, never of how the run was laid
//! out or whether it was interrupted.

use pp_sim::prelude::*;
use pp_tasking::workload::Workload;
use pp_topology::graph::Topology;

/// A quiescence-stable greedy policy (pure, draw-free `decide`), so the
/// event strategy actually gets to skip rounds around the churn events.
struct GreedyStable;
impl LoadBalancer for GreedyStable {
    fn name(&self) -> &str {
        "greedy-stable"
    }
    fn decide(&self, view: &NodeView<'_>, _rng: &mut rand::rngs::StdRng) -> Vec<MigrationIntent> {
        let Some(task) = view.tasks.first() else { return Vec::new() };
        let Some(lowest) = view.neighbors.iter().min_by(|a, b| a.height.total_cmp(&b.height))
        else {
            return Vec::new();
        };
        if view.height - lowest.height > 1.0 {
            vec![MigrationIntent { task: task.id, to: lowest.id, flag: 0.0, heat: 0.0 }]
        } else {
            Vec::new()
        }
    }
    fn quiescence_stable(&self) -> bool {
        true
    }
}

const ROUNDS: u64 = 50;
const SPLIT: u64 = 18;

fn churny(strategy: SimulationStrategy, shards: usize, threads: usize) -> Engine {
    EngineBuilder::new(Topology::torus(&[8, 8]))
        .workload(Workload::uniform_random(64, 6.0, 3))
        .balancer(GreedyStable)
        .config(EngineConfig {
            shards,
            threads,
            consume_rate: 0.25,
            strategy,
            ..Default::default()
        })
        .churn(ChurnPlan::markov(64, ROUNDS, 0.03, 0.3, 41))
        .seed(29)
        .build()
}

fn finish(mut e: Engine) -> RunReport {
    e.run_rounds(ROUNDS);
    e.drain(25.0);
    e.report()
}

#[test]
fn churn_is_identical_across_strategies_layouts_and_resume() {
    let want = finish(churny(SimulationStrategy::Tick, 1, 1));
    // The plan really fires: down nodes exist mid-run.
    {
        let mut probe = churny(SimulationStrategy::Tick, 1, 1);
        probe.run_rounds(SPLIT);
        assert!(probe.down_node_count() > 0, "differential run must exercise churn");
    }
    for k in [1usize, 4, 64] {
        for t in [1usize, 4] {
            // Straight tick run.
            let tick = finish(churny(SimulationStrategy::Tick, k, t));
            assert_eq!(tick, want, "tick K={k} threads={t}");
            // Straight event run.
            let event = finish(churny(SimulationStrategy::Event, k, t));
            assert_eq!(event, want, "event K={k} threads={t}");
            // Interrupted run: checkpoint at the split (through the JSON
            // form, so the serialized path is the one under test), resume
            // into a fresh engine, continue to the end.
            let mut writer = churny(SimulationStrategy::Tick, k, t);
            writer.run_rounds(SPLIT);
            let cp = Checkpoint::from_json(&writer.checkpoint().to_json()).expect("round trip");
            let mut resumed = churny(SimulationStrategy::Event, k, t);
            resumed.restore(&cp).expect("restore");
            resumed.run_rounds(ROUNDS - SPLIT);
            resumed.drain(25.0);
            assert_eq!(resumed.report(), want, "resumed K={k} threads={t}");
        }
    }
}
